"""Action intermediate representation.

A compiled CADEL action names the *device* it controls, the *command*
(bound to a concrete UPnP service/action pair at compile time) and its
*settings* ("with 25 degrees of temperature setting").  Two rules
conflict only when they drive the **same device** with **different**
effects, so :class:`ActionSpec` carries a normalized equality notion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import RuleError


@dataclass(frozen=True)
class Setting:
    """One configuration assignment: ``25 of temperature setting``."""

    parameter: str
    value: Any

    def describe(self) -> str:
        return f"{self.value!r} of {self.parameter} setting"


@dataclass(frozen=True)
class ActionSpec:
    """A fully bound device command.

    Attributes:
        device_udn: UPnP UDN of the target device.
        device_name: friendly name (for dialogs and traces).
        service_id: target service on the device.
        action_name: UPnP action to invoke.
        settings: configuration assignments, mapped by the binder onto
            the action's input arguments.
        verb_text: the original CADEL verb ("turn on"), for rendering.
    """

    device_udn: str
    device_name: str
    service_id: str
    action_name: str
    settings: tuple[Setting, ...] = ()
    verb_text: str = ""

    def __post_init__(self) -> None:
        if not self.device_udn:
            raise RuleError("ActionSpec requires a device UDN")
        if not self.action_name:
            raise RuleError("ActionSpec requires an action name")

    def arguments(self) -> dict[str, Any]:
        """Settings as the argument dict passed to the UPnP invoke."""
        return {setting.parameter: setting.value for setting in self.settings}

    def same_effect_as(self, other: "ActionSpec") -> bool:
        """True when both specs drive the device identically — the paper
        only treats *different* actions on the same device as a conflict."""
        return (
            self.device_udn == other.device_udn
            and self.service_id == other.service_id
            and self.action_name == other.action_name
            and sorted(self.settings, key=lambda s: s.parameter)
            == sorted(other.settings, key=lambda s: s.parameter)
        )

    def describe(self) -> str:
        text = f"{self.verb_text or self.action_name} the {self.device_name}"
        if self.settings:
            text += " with " + " and ".join(s.describe() for s in self.settings)
        return text
