"""Shared evaluation network — cross-rule clause dedup (Rete-style beta memo).

Templated rule populations repeat the same conjunctions across hundreds
of rules ("if the living room is hot and occupied" stamped out per
apartment).  The per-rule bitset path still pays O(subscribers) dict
updates and truth recomputations for every atom flip, even when no
rule's truth can change.  This module collapses that redundancy:

* every *static conjunction* (the static part of one DNF clause, named
  by its sorted atom-key tuple — see
  :attr:`~repro.core.plan.CompiledPlan.clause_parts`) becomes one
  refcounted :class:`ClauseNode`, shared by every rule carrying an equal
  conjunction;
* an atom flip updates each containing node's bitset **once**; only
  nodes whose conjunction truth actually flipped fan out to their
  subscribed rules;
* rule truth reduces to a scan of the rule's clause table:
  ``any(node true  and  volatile part true)``.

With D-fold template duplication an ingest delta therefore costs
O(distinct atoms + distinct clauses), not O(rules) — the A7 benchmark
shape.  Node truth is engine state (each engine evaluates atoms against
its own world), so the network lives on the engine, not the database;
the database's :class:`~repro.core.database.AtomEntry` table remains the
cross-rule *atom* dedup layer feeding candidate atoms to the engine.

Stateful plans (duration atoms) never join the network — their ``held``
bookkeeping requires the original tree walk — and clauses made only of
volatile time/event atoms subscribe with no node at all (their truth is
re-evaluated fresh each time).

This object-graph layout is now the ``columnar=False`` **ablation
baseline**: the default engine keeps the same deduplicated clause state
in the flat arrays of :class:`~repro.core.columnar.ColumnarState`
(benchmark A9 measures the gap).  Both backends implement the identical
subscribe / atom_flipped / rule_truth contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.condition import EvaluationContext
    from repro.core.plan import CompiledPlan

ClauseKey = tuple[str, ...]
"""A clause node's identity: the sorted atom keys of its conjunction."""


class ClauseNode:
    """One deduplicated static conjunction and the rules subscribed to it.

    ``subscribers`` maps rule name → subscription count: a single rule
    may reference the same static conjunction from several clauses
    (e.g. ``(A∧B∧evening) ∨ (A∧B∧night)`` shares the node ``(A,B)``), so
    unsubscription must refcount rather than discard.
    """

    __slots__ = ("atom_keys", "full_mask", "bits", "truth", "subscribers")

    def __init__(self, atom_keys: ClauseKey) -> None:
        self.atom_keys = atom_keys
        self.full_mask = (1 << len(atom_keys)) - 1
        self.bits = 0
        self.truth = False
        self.subscribers: dict[str, int] = {}

    def __repr__(self) -> str:
        return (
            f"<ClauseNode {len(self.atom_keys)} atoms "
            f"truth={self.truth} subs={len(self.subscribers)}>"
        )


class SharedNetwork:
    """Clause-node memo + atom→node index for one engine.

    Invariant: node bitsets always agree with the engine's atom-truth
    cache, which in turn always agrees with the world for every
    subscribed atom (the database's candidate queries are complete, so
    every possible flip reaches :meth:`atom_flipped`).  Rule truth is
    therefore a pure read — no per-rule refresh pass exists or is
    needed.
    """

    __slots__ = ("_nodes", "_atom_nodes", "_tables")

    def __init__(self) -> None:
        self._nodes: dict[ClauseKey, ClauseNode] = {}
        # atom key -> {node: bit within that node}
        self._atom_nodes: dict[str, dict[ClauseNode, int]] = {}
        # rule name -> ((node | None, volatile_mask), ...)
        self._tables: dict[str, tuple[tuple[ClauseNode | None, int], ...]] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def subscribe(
        self,
        rule_name: str,
        plan: "CompiledPlan",
        atom_truth: dict[str, bool],
        world: "EvaluationContext",
    ) -> None:
        """Build the rule's clause table, creating missing nodes.

        A new node's bits come from the engine's atom-truth cache;
        atoms the engine has never evaluated (first subscriber) are
        evaluated against the world once and cached — the same
        evaluate-at-registration semantics as the per-rule bitset path.
        """
        atoms = {key: atom for _bit, key, atom in plan.static_slots}
        table: list[tuple[ClauseNode | None, int]] = []
        for static_keys, volatile_mask in plan.clause_parts:
            if not static_keys:
                table.append((None, volatile_mask))
                continue
            node = self._nodes.get(static_keys)
            if node is None:
                node = ClauseNode(static_keys)
                self._nodes[static_keys] = node
                bits = 0
                for index, key in enumerate(static_keys):
                    truth = atom_truth.get(key)
                    if truth is None:
                        truth = atoms[key].evaluate(world)
                        atom_truth[key] = truth
                    if truth:
                        bits |= 1 << index
                    self._atom_nodes.setdefault(key, {})[node] = 1 << index
                node.bits = bits
                node.truth = bits == node.full_mask
            node.subscribers[rule_name] = node.subscribers.get(rule_name, 0) + 1
            table.append((node, volatile_mask))
        self._tables[rule_name] = tuple(table)

    def unsubscribe(self, rule_name: str) -> None:
        """Drop a rule's clause table; nodes with no remaining
        subscribers are removed from the memo and the atom→node index
        (removal must not leak — nor leave a stale node a later
        re-registration could read)."""
        table = self._tables.pop(rule_name, None)
        if table is None:
            return
        for node, _volatile_mask in table:
            if node is None:
                continue
            count = node.subscribers.get(rule_name, 0) - 1
            if count > 0:
                node.subscribers[rule_name] = count
                continue
            node.subscribers.pop(rule_name, None)
            if not node.subscribers:
                self._drop_node(node)

    def _drop_node(self, node: ClauseNode) -> None:
        self._nodes.pop(node.atom_keys, None)
        for key in node.atom_keys:
            bucket = self._atom_nodes.get(key)
            if bucket is not None:
                bucket.pop(node, None)
                if not bucket:
                    del self._atom_nodes[key]

    def atom_flipped(self, key: str, new_truth: bool) -> Iterable[str]:
        """Propagate one verified atom flip into every containing node;
        returns the rules subscribed to nodes whose *clause* truth
        flipped (the only rules whose observable truth can change)."""
        bucket = self._atom_nodes.get(key)
        if not bucket:
            return ()
        woken: set[str] | None = None
        for node, bit in bucket.items():
            bits = node.bits | bit if new_truth else node.bits & ~bit
            if bits == node.bits:
                continue
            node.bits = bits
            truth = bits == node.full_mask
            if truth != node.truth:
                node.truth = truth
                if woken is None:
                    woken = set()
                woken.update(node.subscribers)
        return woken if woken is not None else ()

    def rule_truth(self, rule_name: str, volatile_bits: int) -> bool:
        """Current truth of a subscribed rule: any clause whose shared
        static node holds and whose volatile part is satisfied."""
        for node, volatile_mask in self._tables.get(rule_name, ()):
            if node is not None and not node.truth:
                continue
            if (volatile_bits & volatile_mask) == volatile_mask:
                return True
        return False

    def subscribed(self, rule_name: str) -> bool:
        return rule_name in self._tables
