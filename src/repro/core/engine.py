"""Event-driven rule execution with runtime conflict arbitration.

The engine owns the live world state (sensor variables, person places,
EPG keyword sets), evaluates rule conditions edge-triggered, and — when
several rules want the same device at once, or a new rule contests a
device another rule currently holds — arbitrates using the
context-attached priority orders (Sect. 3.2 / Fig. 1 of the paper).

Lifecycle of a rule at runtime::

            condition false→true                 lost arbitration and
    IDLE ────────────────────────▶ requesting ──────────────────────▶ FALLBACK
      ▲                                │ won                             │
      │   condition true→false /       ▼                                 │
      └──── `until` triggered ◀──── ACTIVE ◀──── device freed, re-grant ─┘

A rule whose primary action loses the device runs its ``fallback``
action when it has one (Alan's "if it is impossible to use the TV,
record the game with the video recorder"); when the contested device is
later released, standing rules are re-arbitrated so the strongest
claimant upgrades back to its primary action.

Evaluation strategy (the incremental core)
------------------------------------------

By default the engine runs **incrementally**: each rule's condition is
compiled into a :class:`~repro.core.plan.CompiledPlan` and the engine
keeps a per-rule atom-truth bitset.  An ``ingest()`` asks the database's
atom-level index for the atoms whose truth *may* have crossed (sorted
threshold lists for numeric atoms, value/member keys for discrete and
membership atoms), verifies each candidate once, flips the subscribed
bits and re-derives truth from the cached DNF clause masks — work
proportional to what changed, not to how many rules read the variable.

Three small watch sets preserve the seed semantics exactly:

* ``DENIED`` rules retry arbitration on *any* relevant change, flipped
  atom or not, so they are watched per variable while denied;
* ``ACTIVE``/``FALLBACK`` rules with an ``until`` evaluate it on any
  relevant change, so they are watched per variable while holding;
* stateful plans (duration atoms, whose ``held()`` bookkeeping is a
  side effect of tree-walk order) and plans with volatile time/event
  atoms wake on any referenced-variable change via the database's
  variable-watch index and keep their original evaluation order.

Constructing the engine with ``incremental=False`` restores the seed's
full re-evaluation path unchanged (the A5 ablation baseline): every
ingest re-walks the condition tree of every rule reading the variable.
Both modes produce identical truth values, states, holders and traces.

Cross-rule sharing (the A7 optimisations)
-----------------------------------------

Two further layers make the hot paths scale with *distinct context*
rather than rule count; both require ``incremental`` and keep the
per-rule machinery as ablation baselines:

* ``shared=True`` (default) deduplicates identical DNF clauses across
  rules, so a flip updates each distinct clause once and only fans out
  to rules whose *clause* truth changed.  ``shared=False`` restores the
  per-rule bitset fan-out.
* ``columnar=True`` (default, requires ``shared``) keeps that clause
  state in the :class:`~repro.core.columnar.ColumnarState` arrays —
  interned atom/clause slots, a remaining-false counter per clause and
  a vectorized threshold sweep per numeric write — plus the
  :meth:`ingest_batch` bulk entry point.  ``columnar=False`` restores
  the object-graph :class:`~repro.core.network.SharedNetwork` (the A9
  ablation baseline); both backends are driven through the same
  verified-flip contract and produce identical wake sets.
* ``wheel=True`` (default) replaces ``clock_tick``'s blanket
  re-evaluation of every clock-reading rule with the
  :class:`~repro.core.wheel.TimeWheel` boundary schedule: a tick wakes
  only the rules whose time-window atoms actually crossed a start/end
  boundary (plus the DENIED / until / disabled watch sets, which the
  per-tick path re-examines every tick by construction).
  ``wheel=False`` restores the blanket wake.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Collection, Iterable

from repro.core.action import ActionSpec, Setting
from repro.core.columnar import ColumnarState, ColumnarStats
from repro.core.condition import CLOCK_VARIABLE, DurationAtom, TimeWindowAtom
from repro.core.database import RuleDatabase
from repro.core.network import SharedNetwork
from repro.core.plan import CompiledPlan
from repro.core.priority import PriorityManager, PriorityOrder
from repro.core.wheel import TimeWheel
from repro.core.rule import Rule
from repro.errors import ReproError, RuleError
from repro.sim.events import Simulator

Dispatch = Callable[[ActionSpec], None]
PromptPolicy = Callable[[str, list[Rule]], Rule | None]
"""Called when no priority order resolves a conflict: (device_udn,
competing rules) → chosen rule, or None to keep the status quo."""

_HELD_EPSILON = 1e-6

DEFAULT_MAX_TRACE = 100_000

# Power-of-two buckets for wake fan-out sizes.  Spelled inline rather
# than imported: core modules may not import the live obs package (only
# its no-op facade) — see tools/check_obs_imports.py.
_SIZE_BOUNDS = tuple(float(2 ** i) for i in range(17))

# The per-write stages (sweep, fanout) fire once per ingested value, so
# even token-and-clock-read span cost adds ~2% to a worst-case columnar
# batch.  They are sampled deterministically 1-in-N instead — uniform
# over a stream, so stage percentiles stay representative, while exact
# volume lives in the unsampled counters (columnar.writes etc.).  The
# per-batch / per-tick / per-dispatch stages are never sampled.
_SPAN_SAMPLE = 8
"""Default trace ring-buffer capacity — generous enough for scenario
time-charts, bounded so long-running homes don't grow without limit."""


class RuleState(enum.Enum):
    IDLE = "idle"
    ACTIVE = "active"       # primary action holds its device
    FALLBACK = "fallback"   # fallback action holds its device
    DENIED = "denied"       # condition true but no device obtained


@dataclass
class TraceEntry:
    """One engine decision, for scenario time-charts and debugging."""

    time: float
    kind: str          # "fire" | "stop" | "preempt" | "deny" | "fallback" | "conflict"
    rule: str
    device: str = ""
    detail: str = ""

    def describe(self) -> str:
        device = f" [{self.device}]" if self.device else ""
        detail = f" — {self.detail}" if self.detail else ""
        return f"t={self.time:9.1f} {self.kind:<8} {self.rule}{device}{detail}"


class WorldState:
    """Live variable store implementing the EvaluationContext protocol.

    Variables are *owned* by default; the cluster layer marks variables
    that arrive as cross-shard **mirrors** (another shard owns the
    sensor, this engine hosts rules reading it), so traces and
    debugging tools can attribute a value to its authoritative source.
    """

    def __init__(self, simulator: Simulator):
        self._simulator = simulator
        self._numeric: dict[str, float] = {}
        self._discrete: dict[str, str] = {}
        self._sets: dict[str, frozenset[str]] = {}
        self._current_events: set[tuple[str, str | None]] = set()
        self._held_since: dict[str, float] = {}
        self._mirrored: set[str] = set()
        self.on_held_armed: Callable[[str, float], None] | None = None

    # -- EvaluationContext protocol -------------------------------------------

    def numeric(self, variable: str) -> float | None:
        return self._numeric.get(variable)

    def discrete(self, variable: str) -> str | None:
        return self._discrete.get(variable)

    def set_members(self, variable: str) -> frozenset[str]:
        return self._sets.get(variable, frozenset())

    def time_of_day(self) -> float:
        return self._simulator.clock.time_of_day

    def weekday(self) -> int:
        return self._simulator.clock.weekday

    def event_fired(self, event_type: str, subject: str | None) -> bool:
        for fired_type, fired_subject in self._current_events:
            if fired_type != event_type:
                continue
            if subject is None or subject == fired_subject:
                return True
        return False

    def held(self, key: str, currently_true: bool, duration: float) -> bool:
        if not currently_true:
            self._held_since.pop(key, None)
            return False
        since = self._held_since.get(key)
        now = self._simulator.now
        if since is None:
            self._held_since[key] = now
            if self.on_held_armed is not None:
                self.on_held_armed(key, duration)
            return duration <= _HELD_EPSILON
        return (now - since) >= duration - _HELD_EPSILON

    # -- ownership & introspection ---------------------------------------------

    def value_of(self, variable: str) -> Any:
        """The stored value of a variable regardless of type (``None``
        when it was never written) — the cluster reads this to seed a
        freshly subscribed mirror from the owner shard's world."""
        value = self._numeric.get(variable)
        if value is not None:
            return value
        value = self._discrete.get(variable)
        if value is not None:
            return value
        return self._sets.get(variable)

    def is_mirrored(self, variable: str) -> bool:
        """Whether a variable's authoritative copy lives on another
        shard (it arrived through a mirror subscription)."""
        return variable in self._mirrored

    def mark_mirrored(self, variable: str, mirrored: bool) -> None:
        if mirrored:
            self._mirrored.add(variable)
        else:
            self._mirrored.discard(variable)

    def mirrored_variables(self) -> frozenset[str]:
        return frozenset(self._mirrored)

    # -- mutation (engine-internal) ----------------------------------------------

    def set_numeric(self, variable: str, value: float) -> bool:
        changed = self._numeric.get(variable) != value
        self._numeric[variable] = value
        return changed

    def set_discrete(self, variable: str, value: str) -> bool:
        changed = self._discrete.get(variable) != value
        self._discrete[variable] = value
        return changed

    def set_set(self, variable: str, members: frozenset[str]) -> bool:
        changed = self._sets.get(variable, frozenset()) != members
        self._sets[variable] = members
        return changed

    def begin_events(self, events: set[tuple[str, str | None]]) -> None:
        self._current_events = events

    def end_events(self) -> None:
        self._current_events = set()


def _discard_dispatch(spec: ActionSpec) -> None:
    """Action sink installed by :meth:`RuleEngine.disarm_side_effects`."""


def keep_status_quo_policy(device_udn: str, competing: list[Rule]) -> Rule | None:
    """Default prompt policy: change nothing (the paper would pop the
    Fig. 7 dialog here; headless runs keep the current holder)."""
    return None


def _spec_to_jsonable(spec: ActionSpec) -> dict:
    """ActionSpec → plain JSON dict (snapshot holder serialization)."""
    return {
        "device_udn": spec.device_udn,
        "device_name": spec.device_name,
        "service_id": spec.service_id,
        "action_name": spec.action_name,
        "settings": [[s.parameter, s.value] for s in spec.settings],
        "verb_text": spec.verb_text,
    }


def _spec_from_jsonable(data: dict) -> ActionSpec:
    return ActionSpec(
        device_udn=data["device_udn"],
        device_name=data["device_name"],
        service_id=data["service_id"],
        action_name=data["action_name"],
        settings=tuple(
            Setting(parameter, value) for parameter, value in data["settings"]
        ),
        verb_text=data["verb_text"],
    )


class RuleEngine:
    """Evaluates rules against the world state and drives devices."""

    def __init__(
        self,
        database: RuleDatabase,
        priorities: PriorityManager,
        simulator: Simulator,
        dispatch: Dispatch,
        prompt_policy: PromptPolicy | None = None,
        access_check: Callable[[Rule, ActionSpec], None] | None = None,
        *,
        incremental: bool = True,
        shared: bool = True,
        wheel: bool = True,
        columnar: bool = True,
        max_trace: int | None = DEFAULT_MAX_TRACE,
        telemetry: Any = None,
    ) -> None:
        self.database = database
        self.priorities = priorities
        self.simulator = simulator
        self.dispatch = dispatch
        self.prompt_policy = prompt_policy or keep_status_quo_policy
        self.access_check = access_check
        self.incremental = incremental
        # Both cross-rule layers ride on the incremental bookkeeping
        # (atom-truth cache, watch sets); the seed path ignores them.
        self.shared = shared and incremental
        self.wheel = wheel and incremental
        # The columnar backend is the array-layout successor of the
        # shared network: same clause dedup, flat storage.
        self.columnar = columnar and self.shared
        # Observability seam — duck-typed against repro.obs.trace.Telemetry
        # (this module never imports the obs package; the cluster layer
        # passes a live object in, everyone else gets None).  Instruments
        # are bound once so hot paths never go through the registry, and
        # when disabled every seam degrades to one None check.
        self.set_telemetry(telemetry)
        self.world = WorldState(simulator)
        self.world.on_held_armed = self._arm_held_timer
        if max_trace is not None and max_trace <= 0:
            raise RuleError(f"max_trace must be positive: {max_trace}")
        self.trace: deque[TraceEntry] = deque(maxlen=max_trace)
        self._truth: dict[str, bool] = {}
        self._state: dict[str, RuleState] = {}
        self._holders: dict[str, tuple[str, ActionSpec]] = {}  # udn -> (rule, spec)
        self._held_atom_rules: dict[str, set[str]] = {}  # atom key -> rule names
        # Pending held-duration recheck timers, as (fire time, atom key).
        # Tracked so a snapshot can re-arm the *exact* pending set —
        # including stale timers whose key was since re-held — which is
        # what makes restart traces reproduce DENIED re-arbitrations.
        self._held_timers: list[tuple[float, str]] = []
        # -- incremental-evaluation state ----------------------------------------
        # Engine-side plan map, not a shortcut for database.plan_of():
        # rule_removed() runs after the database entry is gone and still
        # needs the plan to prune atom-truth caches.
        self._plans: dict[str, CompiledPlan] = {}        # rule name -> plan
        self._bits: dict[str, int] = {}                  # rule name -> atom bits
        self._atom_truth: dict[str, bool] = {}           # atom key -> cached truth
        self._columnar = ColumnarState() if self.columnar else None
        self._network = (
            SharedNetwork() if self.shared and not self.columnar else None
        )
        self._time_wheel = TimeWheel() if self.wheel else None
        self._wheel_keys: dict[str, tuple[str, ...]] = {}  # rule -> window keys
        # Stateful clock-reading plans (a duration over a window) stay on
        # the every-tick cadence: held() bookkeeping samples the clock at
        # evaluation time, so waking them only at window boundaries would
        # shift held-expiry observations off the tick grid.
        self._tick_stateful: set[str] = set()
        self._watch_vars: dict[str, frozenset[str]] = {}  # rule -> cond+until vars
        self._has_until: set[str] = set()
        # Rules skipped while disabled: the seed path re-examines them on
        # any relevant change once re-enabled, so they must be woken even
        # when no atom flips (their bits may have gone stale meanwhile).
        self._disabled_dirty: set[str] = set()
        # Fired whenever the set of rules a periodic clock tick must
        # re-examine (DENIED/until/disabled clock watchers, stateful
        # window plans, armed wheel boundaries) may have *grown* — the
        # shard's wheel-aware tick scheduler listens and pulls its next
        # wake-up in.  Demand shrinking is handled lazily: the already
        # scheduled tick fires as a no-op and re-arms optimally.
        self.on_clock_demand_changed: Callable[[], None] | None = None
        if incremental:
            # Attach-to-populated-database pattern: rules registered
            # before the engine existed still need plans/bits/watches or
            # delta propagation would silently never wake them.
            for rule in database.all_rules():
                self._index_rule(rule)
        self._denied_watch: dict[str, set[str]] = {}     # variable -> DENIED rules
        self._until_watch: dict[str, set[str]] = {}      # variable -> holding rules

    # -- rule registration hooks ------------------------------------------------------

    def rule_added(self, rule: Rule) -> None:
        """Index duration atoms and evaluate the rule against the current
        state (a rule whose condition is already true fires immediately,
        which is what a user expects right after registering it)."""
        self._index_rule(rule)
        self._truth[rule.name] = False
        self._state[rule.name] = RuleState.IDLE
        self.reevaluate([rule.name])

    def _index_rule(self, rule: Rule) -> None:
        plan = self.database.plan_of(rule.name)
        for atom in plan.atoms:
            if isinstance(atom, DurationAtom):
                self._held_atom_rules.setdefault(atom.key(), set()).add(rule.name)
        if self.incremental:
            self._plans[rule.name] = plan
            watch = set(plan.variables)
            if rule.until is not None:
                self._has_until.add(rule.name)
                watch |= rule.until.referenced_variables()
            self._watch_vars[rule.name] = frozenset(watch)
            backend = self._columnar if self._columnar is not None \
                else self._network
            if backend is not None and not plan.has_duration:
                backend.subscribe(
                    rule.name, plan, self._atom_truth, self.world
                )
            else:
                self._refresh_static_bits(rule.name)
            if self._time_wheel is not None:
                windows = [
                    atom for atom in plan.atoms
                    if isinstance(atom, TimeWindowAtom)
                ]
                if windows and plan.has_duration:
                    self._tick_stateful.add(rule.name)
                    self._notify_clock_demand()
                elif windows:
                    self._wheel_keys[rule.name] = self._time_wheel.subscribe(
                        rule.name, windows, self.simulator.now
                    )
                    self._notify_clock_demand()

    def rule_removed(self, rule_name: str) -> None:
        self._truth.pop(rule_name, None)
        state = self._state.pop(rule_name, None)
        if state is RuleState.DENIED:
            self._unwatch(self._denied_watch, rule_name)
        elif state in (RuleState.ACTIVE, RuleState.FALLBACK):
            self._unwatch(self._until_watch, rule_name)
        plan = self._plans.pop(rule_name, None)
        self._bits.pop(rule_name, None)
        self._watch_vars.pop(rule_name, None)
        self._has_until.discard(rule_name)
        self._disabled_dirty.discard(rule_name)
        if self._columnar is not None:
            self._columnar.unsubscribe(rule_name)
        if self._network is not None:
            self._network.unsubscribe(rule_name)
        if self._time_wheel is not None:
            self._time_wheel.unsubscribe(
                rule_name, self._wheel_keys.pop(rule_name, ())
            )
            self._tick_stateful.discard(rule_name)
        for key in [k for k, rules in self._held_atom_rules.items()
                    if rule_name in rules]:
            bucket = self._held_atom_rules[key]
            bucket.discard(rule_name)
            if not bucket:
                del self._held_atom_rules[key]
        if plan is not None:
            # Drop truth caches for atoms no other rule subscribes to.
            for atom in plan.atoms:
                key = atom.key()
                if key in self._atom_truth and not self.database.has_atom(key):
                    del self._atom_truth[key]
        if state in (RuleState.ACTIVE, RuleState.FALLBACK):
            self._release_holdings(rule_name)

    # -- state bookkeeping -------------------------------------------------------------

    def _set_state(self, rule_name: str, state: RuleState) -> None:
        """State transition, maintaining the per-variable watch sets the
        incremental path needs for DENIED retries and until checks."""
        if not self.incremental:
            self._state[rule_name] = state
            return
        previous = self._state.get(rule_name)
        if previous is state:
            return
        holding = (RuleState.ACTIVE, RuleState.FALLBACK)
        if previous is RuleState.DENIED:
            self._unwatch(self._denied_watch, rule_name)
        elif previous in holding and state not in holding:
            self._unwatch(self._until_watch, rule_name)
        if state is RuleState.DENIED:
            self._watch(self._denied_watch, rule_name)
        elif state in holding and previous not in holding \
                and rule_name in self._has_until:
            self._watch(self._until_watch, rule_name)
        self._state[rule_name] = state
        # A clock-watching rule entering DENIED (retry every tick) or a
        # holding state with a clock-reading until needs periodic ticks
        # again; tell the wheel-aware scheduler.
        if CLOCK_VARIABLE in self._watch_vars.get(rule_name, ()):
            self._notify_clock_demand()

    def _watch(self, index: dict[str, set[str]], rule_name: str) -> None:
        for variable in self._watch_vars.get(rule_name, ()):
            index.setdefault(variable, set()).add(rule_name)

    def _unwatch(self, index: dict[str, set[str]], rule_name: str) -> None:
        for variable in self._watch_vars.get(rule_name, ()):
            bucket = index.get(variable)
            if bucket is not None:
                bucket.discard(rule_name)
                if not bucket:
                    del index[variable]

    # -- world-state ingestion ----------------------------------------------------------

    def ingest(self, variable: str, value: Any) -> None:
        """Update one variable from a sensor event and re-evaluate the
        rules whose conditions read it.

        In incremental mode the rules woken are exactly those whose
        observable behaviour can change: subscribers of atoms whose truth
        flipped, plus the DENIED/until/variable-watch sets."""
        candidates: list | None = None
        if isinstance(value, bool):
            value = "true" if value else "false"
        if isinstance(value, str):
            old_discrete = self.world.discrete(variable)
            if not self.world.set_discrete(variable, value):
                return
            if self.incremental:
                candidates = self.database.discrete_candidates(
                    variable, old_discrete, value)
        elif isinstance(value, (int, float)):
            old_numeric = self.world.numeric(variable)
            new_numeric = float(value)
            if not self.world.set_numeric(variable, new_numeric):
                return
            if self.incremental:
                if self._columnar is not None:
                    # Columnar fast path: the backend owns the threshold
                    # index and verifies the whole candidate window in
                    # one sweep — no per-atom candidate list is built.
                    spans = self._spans
                    token = None
                    if spans is not None:
                        self._sweep_tick = tick = \
                            (self._sweep_tick + 1) % _SPAN_SAMPLE
                        if tick == 0:
                            token = spans.span_begin("sweep")
                    dirty = self._columnar.numeric_write(
                        variable, old_numeric, new_numeric, self.world
                    )
                    if token is not None:
                        spans.span_end(token, size=len(dirty))
                    self._finish_wake(variable, dirty)
                    return
                candidates = self.database.numeric_candidates(
                    variable, old_numeric, new_numeric)
        elif isinstance(value, (frozenset, set, list, tuple)):
            old_members = self.world.set_members(variable)
            new_members = value if isinstance(value, frozenset) \
                else frozenset(value)
            if not self.world.set_set(variable, new_members):
                return
            if self.incremental:
                candidates = self.database.set_candidates(
                    variable, old_members, new_members)
        elif value is None:
            return
        else:
            raise RuleError(f"cannot ingest value of type {type(value).__name__}")

        if not self.incremental:
            dirty = [r.name for r in self.database.rules_reading_variable(variable)]
            self._evaluate_rules(dirty, full=False)
            return
        self._propagate_deltas(variable, candidates)

    def ingest_batch(
        self, writes: "Iterable[tuple[str, Any]]"
    ) -> tuple[int, int]:
        """Apply a drained batch of sensor writes in publish order.

        Each write keeps exact per-event semantics — atom flips, wake
        sets and rule evaluations are identical to calling
        :meth:`ingest` per entry (edge-triggered firing forbids
        deferring or merging observable intermediate states; value
        coalescing is the bus's job, gated by ``coalesce_safe``).  What
        the batch entry point buys is the columnar hot path per write
        (one vectorized threshold sweep instead of a per-atom candidate
        loop) plus batch-level observability: returns ``(atoms_flipped,
        clauses_touched)`` deltas for this batch, ``(0, 0)`` on the
        object-graph paths."""
        spans = self._spans
        token = spans.span_begin("batch") if spans is not None else None
        columnar = self._columnar
        if columnar is None:
            applied = 0
            for variable, value in writes:
                self.ingest(variable, value)
                applied += 1
            if token is not None:
                spans.span_end(token, size=applied)
            return 0, 0
        stats = columnar.stats
        flips_before = stats.atoms_flipped
        touched_before = stats.clauses_touched
        applied = 0
        for variable, value in writes:
            self.ingest(variable, value)
            applied += 1
        stats.batches += 1
        stats.batch_writes += applied
        if token is not None:
            spans.span_end(token, size=applied)
        return (
            stats.atoms_flipped - flips_before,
            stats.clauses_touched - touched_before,
        )

    @property
    def columnar_stats(self) -> "ColumnarStats | None":
        """The columnar backend's hot-path counters (None when the
        engine runs an object-graph path)."""
        return self._columnar.stats if self._columnar is not None else None

    def set_telemetry(self, telemetry: Any) -> None:
        """(Re)bind the observability plane.  Passing ``None`` (or a
        disabled plane) detaches every instrument, restoring the
        exact disabled-construction hot path; passing a live plane
        binds its instruments once so the seams never touch the
        registry.  Safe mid-stream: telemetry is a pure read-side
        plane, so toggling it cannot perturb evaluation."""
        self.telemetry = telemetry
        self._sweep_tick = 0
        self._fanout_tick = 0
        if telemetry is not None and telemetry.enabled:
            self._spans = telemetry.spans
            self._wheel_wake_counter = telemetry.registry.counter(
                "wheel.wakes")
            self._wheel_wake_sizes = telemetry.registry.histogram(
                "wheel.wake_size", _SIZE_BOUNDS)
        else:
            self._spans = None
            self._wheel_wake_counter = None
            self._wheel_wake_sizes = None

    def wheel_stats(self) -> dict | None:
        """The time wheel's schedule counters (None with the wheel off):
        ``armed`` distinct boundaries currently scheduled, ``armed_total``
        boundaries ever armed (subscriptions plus re-arms)."""
        wheel = self._time_wheel
        if wheel is None:
            return None
        return {"armed": len(wheel), "armed_total": wheel.armed_total}

    def _propagate_deltas(self, variable: str,
                          candidates: Iterable) -> None:
        """Verify candidate atoms, flip subscriber bits, wake watchers."""
        dirty: set[str] = set()
        bits = self._bits
        columnar = self._columnar
        network = self._network
        truth_cache = self._atom_truth
        for entry in candidates:
            new_truth = entry.atom.evaluate(self.world)
            if columnar is not None:
                # Columnar path (discrete/membership candidates; numeric
                # writes take numeric_write): truth is deduplicated and
                # cached in the columns, so the backend both detects the
                # flip and fans it out.
                dirty.update(columnar.atom_flipped(entry.key, new_truth))
                continue
            if truth_cache.get(entry.key, False) == new_truth:
                continue
            truth_cache[entry.key] = new_truth
            if network is not None:
                # Shared path: flip each distinct clause once; only
                # clause-truth flips fan out to rules.
                dirty.update(network.atom_flipped(entry.key, new_truth))
            elif new_truth:
                for name, bit in entry.subscribers.items():
                    current = bits.get(name)
                    if current is not None:
                        bits[name] = current | bit
                        dirty.add(name)
            else:
                for name, bit in entry.subscribers.items():
                    current = bits.get(name)
                    if current is not None:
                        bits[name] = current & ~bit
                        dirty.add(name)
        self._finish_wake(variable, dirty)

    def _finish_wake(self, variable: str, dirty: set[str]) -> None:
        """Shared tail of every ingest: add the variable's watchers and
        watch sets to the flip-derived wake set, then evaluate."""
        spans = self._spans
        token = None
        if spans is not None:
            self._fanout_tick = tick = (self._fanout_tick + 1) % _SPAN_SAMPLE
            if tick == 0:
                token = spans.span_begin("fanout")
        watchers = self.database.variable_watchers(variable)
        if watchers:
            dirty.update(watchers)
        self._wake_watch_sets(variable, dirty, refresh_stale_bits=True)
        self._evaluate_dirty(dirty, full=False)
        if token is not None:
            spans.span_end(token, size=len(dirty))

    def _wake_watch_sets(
        self, variable: str, dirty: set[str], *, refresh_stale_bits: bool
    ) -> None:
        """Union in the per-variable sets the seed path re-examined on
        every relevant change: DENIED rules retrying arbitration,
        holding rules with a watching ``until``, and disabled-skipped
        rules (whose stale per-rule bits are refreshed here when the
        upcoming evaluation will not — shared clause nodes never go
        stale, and a ``full`` evaluation refreshes on its own)."""
        denied = self._denied_watch.get(variable)
        if denied:
            dirty.update(denied)
        holding = self._until_watch.get(variable)
        if holding:
            dirty.update(holding)
        if self._disabled_dirty:
            for name in list(self._disabled_dirty):
                watch = self._watch_vars.get(name)
                if watch is not None and variable in watch:
                    if refresh_stale_bits and self._network is None \
                            and self._columnar is None:
                        self._refresh_static_bits(name)
                    dirty.add(name)

    def _evaluate_dirty(self, dirty: set[str], *, full: bool) -> None:
        """Evaluate a wake set in the seed's deterministic rule_id order
        (skipping names a queued wake outlived)."""
        if not dirty:
            return
        database = self.database
        ordered = sorted(
            (name for name in dirty if name in database),
            key=lambda name: database.get(name).rule_id,
        )
        self._evaluate_rules(ordered, full=full)

    def post_event(
        self,
        event_type: str,
        subject: str | None = None,
        *,
        only: Collection[str] | None = None,
    ) -> None:
        """Fire an instantaneous event ("returns home"); rules whose
        conditions mention it are evaluated exactly once with the event
        visible, then their truth settles back without re-triggering
        stop actions (events fire rules; they do not sustain them).

        ``only`` restricts the wake set to the named rules — cluster
        shards host several homes, and a home-scoped event must not leak
        to co-located homes' rules."""
        dirty = [
            r.name
            for r in self.database.rules_reading_variable(f"event:{event_type}")
            if only is None or r.name in only
        ]
        self.world.begin_events({(event_type, subject)})
        try:
            self.reevaluate(dirty)
        finally:
            self.world.end_events()
        for name in dirty:
            if name not in self.database:
                continue
            rule = self.database.get(name)
            truth = self._compute_truth(name, rule, full=True)
            if self._truth.get(name, False) and not truth:
                self._truth[name] = False
                if self._state.get(name) in (RuleState.ACTIVE, RuleState.FALLBACK):
                    # Fire-and-forget: drop the bookkeeping claim quietly.
                    self._set_state(name, RuleState.IDLE)
                    self._release_holdings(name)
                else:
                    self._set_state(name, RuleState.IDLE)

    def clock_tick(self) -> None:
        """Periodic clock tick — the single code path the home server's
        clock task and the cluster shards share, so window-boundary
        semantics can never drift between the two facades.

        With the wheel off, every rule reading the clock pseudo-variable
        is re-evaluated (O(clock rules) per tick).  With the wheel on,
        only rules whose window atoms crossed a start/end boundary since
        the last tick wake — plus the sets the blanket wake re-examined
        every tick as a side effect and that genuinely need it: DENIED
        rules retrying arbitration, holding rules with a clock-reading
        ``until``, disabled-skipped rules whose next wake must re-derive
        truth, and stateful duration-over-window plans whose ``held()``
        sampling is tick-sensitive.  O(crossings), ~flat in the window
        population.
        """
        if self._time_wheel is None:
            dirty = [
                r.name
                for r in self.database.rules_reading_variable(CLOCK_VARIABLE)
            ]
            if dirty:
                self.reevaluate(dirty)
            return
        spans = self._spans
        token = spans.span_begin("wheel") if spans is not None else None
        wake = self._time_wheel.advance(self.simulator.now)
        if self._tick_stateful:
            wake |= self._tick_stateful
        self._wake_watch_sets(CLOCK_VARIABLE, wake, refresh_stale_bits=False)
        self._evaluate_dirty(wake, full=True)
        if token is not None:
            spans.span_end(token, size=len(wake))
            self._wheel_wake_counter.inc(len(wake))
            self._wheel_wake_sizes.observe(len(wake))

    def clock_demand(self) -> float:
        """The earliest simulated time the next ``clock_tick`` can do
        observable work — the wheel-aware tick scheduler's sleep target.

        Returns ``now`` when every periodic tick matters (no wheel, or
        any tick-stateful plan / DENIED / until / disabled clock-watcher
        the blanket wake would re-examine each tick), the next armed
        wheel boundary when only window crossings remain, and ``inf``
        when nothing clock-driven exists at all.  Demand can only move
        *earlier* through paths that fire :attr:`on_clock_demand_changed`,
        so a scheduler that re-arms on that hook never oversleeps; ticks
        it schedules too early are no-ops and therefore trace-invisible.
        """
        if self._time_wheel is None:
            return self.simulator.now
        if self._tick_stateful or self._denied_watch.get(CLOCK_VARIABLE) \
                or self._until_watch.get(CLOCK_VARIABLE):
            return self.simulator.now
        for name in self._disabled_dirty:
            watch = self._watch_vars.get(name)
            if watch is not None and CLOCK_VARIABLE in watch:
                return self.simulator.now
        boundary = self._time_wheel.peek()
        return math.inf if boundary is None else boundary

    def _notify_clock_demand(self) -> None:
        if self.on_clock_demand_changed is not None:
            self.on_clock_demand_changed()

    # -- evaluation ------------------------------------------------------------------------

    def reevaluate(self, rule_names: list[str]) -> None:
        """Recompute the truth of the given rules, firing edges."""
        self._evaluate_rules(rule_names, full=True)

    def reevaluate_all(self) -> None:
        self.reevaluate([rule.name for rule in self.database.all_rules()])

    def _compute_truth(self, name: str, rule: Rule, full: bool) -> bool:
        """Current condition truth.

        ``full`` recomputes every atom slot (registration, explicit
        reevaluation, clock ticks); otherwise the cached bits — already
        updated by delta propagation — are combined with freshly
        evaluated volatile atoms.  Stateful plans and the non-incremental
        baseline walk the condition tree exactly as the seed engine did.
        """
        if not self.incremental:
            return rule.condition.evaluate(self.world)
        plan = self._plans.get(name)
        if plan is None or plan.has_duration:
            return rule.condition.evaluate(self.world)
        if self._columnar is not None:
            # Clause counters are maintained by delta propagation and
            # never go stale, so full and partial reads are the same.
            volatile_bits = (
                plan.volatile_bits(self.world) if plan.volatile_slots else 0
            )
            return self._columnar.rule_truth(name, volatile_bits)
        if self._network is not None:
            # Shared clause nodes are maintained by delta propagation and
            # never go stale, so full and partial reads are the same.
            volatile_bits = (
                plan.volatile_bits(self.world) if plan.volatile_slots else 0
            )
            return self._network.rule_truth(name, volatile_bits)
        if full:
            bits = self._refresh_static_bits(name)
        else:
            bits = self._bits.get(name, 0)
        if plan.volatile_slots:
            bits |= plan.volatile_bits(self.world)
        return plan.truth(bits)

    def _refresh_static_bits(self, name: str) -> int:
        """Recompute a fast rule's static atom bits from the world (pure;
        never touches duration state)."""
        plan = self._plans.get(name)
        if plan is None or plan.has_duration:
            return 0
        bits = 0
        truth_cache = self._atom_truth
        for bit, key, atom in plan.static_slots:
            atom_truth = atom.evaluate(self.world)
            if atom_truth:
                bits |= bit
            truth_cache[key] = atom_truth
        self._bits[name] = bits
        return bits

    def _evaluate_rules(self, rule_names: Iterable[str], full: bool) -> None:
        """Shared edge-firing loop of both evaluation paths."""
        rising: list[Rule] = []
        for name in rule_names:
            if name not in self.database:
                continue
            rule = self.database.get(name)
            if not rule.enabled:
                if self.incremental:
                    self._disabled_dirty.add(name)
                    if CLOCK_VARIABLE in self._watch_vars.get(name, ()):
                        self._notify_clock_demand()
                continue
            if self._disabled_dirty:
                self._disabled_dirty.discard(name)
            truth = self._compute_truth(name, rule, full)
            previous = self._truth.get(name, False)
            self._truth[name] = truth
            if truth and not previous:
                rising.append(rule)
            elif previous and not truth:
                self._on_condition_fall(rule)
            elif truth and self._state.get(name) is RuleState.DENIED:
                rising.append(rule)  # retry denied rules on any relevant change
            if (
                truth
                and rule.until is not None
                and self._state.get(name) in (RuleState.ACTIVE, RuleState.FALLBACK)
                and rule.until.evaluate(self.world)
            ):
                self._stop_rule(rule, reason="until condition met")
        if rising:
            self._process_requests(rising)

    # -- request processing & arbitration -----------------------------------------------------

    def _process_requests(self, rules: list[Rule]) -> None:
        """Arbitrate device requests; a bounded cascade lets preempted
        rules fall back and fallback devices be contested in turn."""
        queue: list[tuple[Rule, ActionSpec, bool]] = [
            (rule, rule.action, True) for rule in rules
        ]
        for _ in range(64):  # bound: cascades are short in practice
            if not queue:
                return
            queue = self._arbitration_round(queue)
        raise RuleError("arbitration cascade did not settle within 64 rounds")

    def _arbitration_round(
        self, requests: list[tuple[Rule, ActionSpec, bool]]
    ) -> list[tuple[Rule, ActionSpec, bool]]:
        by_device: dict[str, list[tuple[Rule, ActionSpec, bool]]] = {}
        for request in requests:
            by_device.setdefault(request[1].device_udn, []).append(request)

        next_round: list[tuple[Rule, ActionSpec, bool]] = []
        for udn, wants in sorted(by_device.items()):
            competing = [rule for rule, _, _ in wants]
            holder = self._holders.get(udn)
            holder_rule: Rule | None = None
            if holder is not None and holder[0] not in {r.name for r in competing}:
                if holder[0] in self.database:
                    holder_rule = self.database.get(holder[0])
                    competing = competing + [holder_rule]
            winner, order = self.priorities.arbitrate(udn, competing, self.world)
            if winner is None:
                if len(competing) > 1:
                    self._trace("conflict", competing[0].name, udn,
                                "no applicable priority order; prompting")
                    winner = self.prompt_policy(udn, competing)
                    if winner is None:
                        winner = holder_rule if holder_rule is not None \
                            else competing[0]
                else:
                    winner = competing[0]
            # Grant the device to the winner.
            if holder_rule is not None and winner.name != holder_rule.name:
                next_round.extend(self._preempt(holder_rule, udn, winner, order))
            for rule, spec, is_primary in wants:
                if rule.name == winner.name:
                    self._grant(rule, spec, is_primary, order)
                else:
                    next_round.extend(
                        self._deny(rule, spec, is_primary, winner, udn)
                    )
        return next_round

    def _grant(self, rule: Rule, spec: ActionSpec, is_primary: bool,
               order: PriorityOrder | None) -> None:
        self._holders[spec.device_udn] = (rule.name, spec)
        self._set_state(
            rule.name, RuleState.ACTIVE if is_primary else RuleState.FALLBACK
        )
        detail = spec.describe()
        if order is not None:
            detail += f" (order: {order.describe()})"
        self._trace("fire", rule.name, spec.device_udn, detail)
        self._dispatch_safely(rule, spec)

    def _deny(
        self,
        rule: Rule,
        spec: ActionSpec,
        is_primary: bool,
        winner: Rule,
        udn: str,
    ) -> list[tuple[Rule, ActionSpec, bool]]:
        if is_primary and rule.fallback is not None:
            self._trace("fallback", rule.name, udn,
                        f"lost {spec.device_name!r} to {winner.name!r}; "
                        f"trying {rule.fallback.describe()}")
            return [(rule, rule.fallback, False)]
        self._set_state(rule.name, RuleState.DENIED)
        self._trace("deny", rule.name, udn, f"lost to {winner.name!r}")
        return []

    def _preempt(
        self, holder_rule: Rule, udn: str, winner: Rule,
        order: PriorityOrder | None,
    ) -> list[tuple[Rule, ActionSpec, bool]]:
        """Take the device away from its current holder."""
        holder_name, holder_spec = self._holders.pop(udn)
        was_primary = holder_spec == holder_rule.action
        self._trace("preempt", holder_name, udn,
                    f"preempted by {winner.name!r}")
        if was_primary and holder_rule.fallback is not None \
                and self._truth.get(holder_name, False):
            self._trace("fallback", holder_name, udn,
                        f"preempted; trying {holder_rule.fallback.describe()}")
            return [(holder_rule, holder_rule.fallback, False)]
        self._set_state(holder_name, RuleState.DENIED)
        return []

    # -- stopping & release ----------------------------------------------------------------------

    def _on_condition_fall(self, rule: Rule) -> None:
        if self._state.get(rule.name) in (RuleState.ACTIVE, RuleState.FALLBACK):
            self._stop_rule(rule, reason="condition no longer holds")
        else:
            self._set_state(rule.name, RuleState.IDLE)

    def _stop_rule(self, rule: Rule, reason: str) -> None:
        self._trace("stop", rule.name, detail=reason)
        if rule.stop_action is not None:
            self._dispatch_safely(rule, rule.stop_action)
        self._set_state(rule.name, RuleState.IDLE)
        self._release_holdings(rule.name)

    def _dispatch_safely(self, rule: Rule, spec: ActionSpec) -> None:
        """Issue a device command; a failing device (offline, rejected
        action) or a privilege violation is traced but never takes the
        engine down — a home keeps running when one appliance misbehaves.

        The access check here is defence in depth: registration already
        rejects unauthorized rules, but imported/legacy rules must still
        be stopped at the device boundary."""
        spans = self._spans
        token = spans.span_begin("action") if spans is not None else None
        try:
            if self.access_check is not None:
                try:
                    self.access_check(rule, spec)
                except ReproError as exc:
                    self._trace("error", rule.name, spec.device_udn,
                                f"access denied: {exc}")
                    return
            try:
                self.dispatch(spec)
            except ReproError as exc:
                self._trace("error", rule.name, spec.device_udn,
                            f"dispatch failed: {exc}")
        finally:
            if token is not None:
                spans.span_end(token)

    def _release_holdings(self, rule_name: str) -> None:
        freed = [udn for udn, (name, _) in self._holders.items() if name == rule_name]
        for udn in freed:
            del self._holders[udn]
        for udn in freed:
            self._regrant(udn)

    def _regrant(self, udn: str) -> None:
        """A device was released: the strongest standing claimant (a rule
        whose condition still holds and whose primary targets this
        device) gets it."""
        standing = [
            rule
            for rule in self.database.rules_for_device(udn)
            if rule.enabled
            and self._truth.get(rule.name, False)
            and rule.action.device_udn == udn
            and self._state.get(rule.name) in (RuleState.DENIED, RuleState.FALLBACK)
        ]
        if not standing:
            return
        winner, order = self.priorities.arbitrate(udn, standing, self.world)
        if winner is None:
            winner = self.prompt_policy(udn, standing) or standing[0]
        # Upgrading from fallback releases the fallback device first.
        if self._state.get(winner.name) is RuleState.FALLBACK:
            self._release_holdings(winner.name)
        self._grant(winner, winner.action, is_primary=True, order=order)

    # -- holders & introspection --------------------------------------------------------------------

    def holder_of(self, udn: str) -> tuple[str, ActionSpec] | None:
        """(rule name, action spec) currently holding a device, if any."""
        return self._holders.get(udn)

    def rule_state(self, rule_name: str) -> RuleState:
        return self._state.get(rule_name, RuleState.IDLE)

    def rule_truth(self, rule_name: str) -> bool:
        return self._truth.get(rule_name, False)

    # -- durability (snapshot / restore) ------------------------------------------------------------

    def disarm_side_effects(self) -> None:
        """Silence the engine's outward effects while rules re-register
        during recovery: dispatched actions already fired before the
        crash, and held-duration timers are restored verbatim in phase
        2.  Must be paired with :meth:`rearm_side_effects`; calls do not
        nest."""
        self._saved_side_effects = (self.dispatch, self.world.on_held_armed)
        self.dispatch = _discard_dispatch
        self.world.on_held_armed = None

    def rearm_side_effects(self) -> None:
        """Restore the dispatch and held-timer hooks
        :meth:`disarm_side_effects` saved."""
        self.dispatch, self.world.on_held_armed = self._saved_side_effects
        del self._saved_side_effects

    def runtime_snapshot(self) -> dict:
        """JSON-ready snapshot of every piece of runtime state that is
        *not* a pure function of (world, registered rules).

        Backend state — columnar atom/clause columns, shared-network
        nodes, per-rule bitsets, watch-variable indexes — is deliberately
        absent: re-registering the rules against the restored world
        rebuilds it exactly (subscription evaluates first-seen atoms
        against the world).  What must be carried verbatim is the world
        itself, edge-trigger memory (truth), the arbitration outcome
        (states, holders), held-since bookkeeping with its pending
        recheck timers, the wheel's armed boundaries (a boundary between
        the last tick and the snapshot would otherwise be skipped by
        strictly-after re-subscription), enable flags and the trace ring.
        """
        world = self.world
        now = self.simulator.now
        wheel = self._time_wheel
        return {
            "world": {
                "numeric": dict(world._numeric),
                "discrete": dict(world._discrete),
                "sets": {
                    variable: sorted(members)
                    for variable, members in world._sets.items()
                },
                "held_since": dict(world._held_since),
            },
            "held_timers": [
                [when, key] for when, key in self._held_timers if when >= now
            ],
            "truth": dict(self._truth),
            "state": {
                name: state.value for name, state in self._state.items()
            },
            "holders": {
                udn: [name, _spec_to_jsonable(spec)]
                for udn, (name, spec) in self._holders.items()
            },
            "enabled": {
                rule.name: rule.enabled
                for rule in self.database.all_rules()
            },
            "disabled_dirty": sorted(self._disabled_dirty),
            "trace": [
                [e.time, e.kind, e.rule, e.device, e.detail]
                for e in self.trace
            ],
            "wheel": (
                {"next": dict(wheel._next), "armed_total": wheel.armed_total}
                if wheel is not None else None
            ),
        }

    def restore_world(self, snapshot: dict) -> None:
        """Recovery phase 1: overlay the world *before* rules re-register,
        so registration-time subscription evaluates atoms against the
        restored values and every backend rebuilds in its final state."""
        world = self.world
        data = snapshot["world"]
        world._numeric.clear()
        world._numeric.update(data["numeric"])
        world._discrete.clear()
        world._discrete.update(data["discrete"])
        world._sets.clear()
        for variable, members in data["sets"].items():
            world._sets[variable] = frozenset(members)
        world._held_since.clear()
        world._held_since.update(data["held_since"])

    def restore_runtime(self, snapshot: dict) -> None:
        """Recovery phase 2, after rules re-registered: overlay truth,
        states, holders and the trace (erasing registration-time firing
        side effects), rebuild the DENIED/until watch sets those states
        imply, restore the wheel schedule and re-arm held rechecks."""
        database = self.database
        for name, enabled in snapshot["enabled"].items():
            if name in database:
                database.get(name).enabled = enabled
        self._truth.clear()
        self._truth.update(snapshot["truth"])
        self._state.clear()
        for name, value in snapshot["state"].items():
            self._state[name] = RuleState(value)
        self._holders.clear()
        for udn, (name, spec) in snapshot["holders"].items():
            self._holders[udn] = (name, _spec_from_jsonable(spec))
        self._disabled_dirty.clear()
        self._disabled_dirty.update(
            name for name in snapshot["disabled_dirty"] if name in database
        )
        # The watch sets are exactly what _set_state maintains: a pure
        # function of each rule's restored state and watch variables.
        self._denied_watch.clear()
        self._until_watch.clear()
        if self.incremental:
            holding = (RuleState.ACTIVE, RuleState.FALLBACK)
            for name, state in self._state.items():
                if name not in database:
                    continue
                if state is RuleState.DENIED:
                    self._watch(self._denied_watch, name)
                elif state in holding and name in self._has_until:
                    self._watch(self._until_watch, name)
        self.trace.clear()
        for time, kind, rule, device, detail in snapshot["trace"]:
            self.trace.append(TraceEntry(time, kind, rule, device, detail))
        wheel_data = snapshot.get("wheel")
        if wheel_data is not None and self._time_wheel is not None:
            self._time_wheel.restore_schedule(
                wheel_data["next"], wheel_data["armed_total"]
            )
        del self._held_timers[:]
        for when, key in snapshot["held_timers"]:
            self._schedule_held_recheck(when, key)

    # -- duration timers --------------------------------------------------------------------------------

    def _arm_held_timer(self, key: str, duration: float) -> None:
        # Same float arithmetic as call_after(now + (duration + eps)):
        # snapshot restores must re-arm at bit-identical times.
        self._schedule_held_recheck(
            self.simulator.now + (duration + _HELD_EPSILON), key
        )

    def _schedule_held_recheck(self, when: float, key: str) -> None:
        entry = (when, key)
        self._held_timers.append(entry)

        def recheck() -> None:
            try:
                self._held_timers.remove(entry)
            except ValueError:
                pass
            rules = list(self._held_atom_rules.get(key, ()))
            if rules:
                self.reevaluate(rules)

        self.simulator.call_at(when, recheck)

    def _trace(self, kind: str, rule: str, device: str = "", detail: str = "") -> None:
        self.trace.append(
            TraceEntry(
                time=self.simulator.now, kind=kind, rule=rule,
                device=device, detail=detail,
            )
        )
