"""Condition intermediate representation.

CADEL ``<CondExpr>`` trees compile into And/Or combinations of typed
atoms.  The same IR serves three purposes:

1. **Runtime evaluation** against the live world state
   (:meth:`Condition.evaluate` with an :class:`EvaluationContext`).
2. **Satisfiability analysis** for the registration-time consistency and
   conflict checks: :meth:`Condition.dnf` normalizes to a disjunction of
   conjunctions, whose typed parts are then handed to the numeric solver
   (linear atoms), a contradiction check (discrete atoms) and arc
   intersection (time windows).
3. **Explanation**: every atom renders back to readable text for the
   conflict dialog.

Atom vocabulary and what CADEL constructs map to them:

========================  =====================================================
Atom                      CADEL source
========================  =====================================================
:class:`NumericAtom`      "temperature is higher than 28 degrees"
:class:`DiscreteAtom`     "Tom is at the living room", "the stereo is turned on"
:class:`MembershipAtom`   "a baseball game is on air" (EPG keyword sets)
:class:`TimeWindowAtom`   "after evening", "at night", "from 9pm to 11pm"
:class:`EventAtom`        "someone returns home", "Alan got home from work"
:class:`DurationAtom`     "entrance door is unlocked *for 1 hour*"
========================  =====================================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence

from repro.errors import RuleError
from repro.sim.clock import SECONDS_PER_DAY, format_time_of_day
from repro.solver.linear import LinearConstraint


class EvaluationContext(Protocol):
    """What the rule engine supplies when evaluating conditions."""

    def numeric(self, variable: str) -> float | None:
        """Current value of a numeric sensor variable (None = unknown)."""

    def discrete(self, variable: str) -> str | None:
        """Current value of a discrete variable (None = unknown)."""

    def set_members(self, variable: str) -> frozenset[str]:
        """Current membership of a set-valued variable (EPG keywords)."""

    def time_of_day(self) -> float:
        """Seconds since midnight."""

    def weekday(self) -> int:
        """0 = Monday ... 6 = Sunday."""

    def event_fired(self, event_type: str, subject: str | None) -> bool:
        """Whether a matching instantaneous event fired this engine step."""

    def held(self, key: str, currently_true: bool, duration: float) -> bool:
        """Duration tracking: has the keyed condition been continuously
        true for at least ``duration`` seconds (given its current truth)?"""


Conjunction = tuple["Atom", ...]
"""One conjunct of a DNF: a conjunction of atoms."""

CLOCK_VARIABLE = "clock:time_of_day"
"""Pseudo-variable read by time-window atoms; the server's periodic
clock tick re-evaluates every rule referencing it."""


def _memo(condition: "Condition", attr: str, compute):
    """Per-instance memo that also works on frozen, slotted dataclass
    atoms.

    Conditions are immutable once built, so key/dnf/variable queries can
    be computed once; ``object.__setattr__`` bypasses the frozen guard
    and ``getattr`` (rather than ``__dict__``) reads through the memo
    slots declared on :class:`Condition`.
    """
    value = getattr(condition, attr, None)
    if value is None:
        value = compute()
        object.__setattr__(condition, attr, value)
    return value


class Condition(ABC):
    """Base class of the condition IR.

    Condition trees dominate a big database's heap (every rule holds
    one), so the whole hierarchy is slotted; the ``_memo_*`` slots back
    the lazy key/dnf/variable memos of :func:`_memo`.
    """

    __slots__ = ("_memo_key", "_memo_dnf", "_memo_numeric_vars",
                 "_memo_referenced_vars")

    @abstractmethod
    def evaluate(self, ctx: EvaluationContext) -> bool:
        """Truth value under the current world state."""

    @abstractmethod
    def dnf(self) -> list[Conjunction]:
        """Disjunctive normal form as a list of atom conjunctions."""

    @abstractmethod
    def key(self) -> str:
        """Stable, content-derived identity (used for duration tracking
        and deduplication; equal conditions share keys)."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable rendering for dialogs and logs."""

    def numeric_variables(self) -> frozenset[str]:
        def compute() -> frozenset[str]:
            names: set[str] = set()
            for conjunction in self.dnf():
                for atom in conjunction:
                    names |= atom.referenced_numeric_variables()
            return frozenset(names)

        return _memo(self, "_memo_numeric_vars", compute)

    def referenced_variables(self) -> frozenset[str]:
        """Every variable (numeric, discrete or set) the condition reads;
        the engine uses this to know which rules to re-evaluate when a
        sensor value changes.  Returns a shared memoized frozenset —
        callers must not mutate it."""
        def compute() -> frozenset[str]:
            names: set[str] = set()
            for conjunction in self.dnf():
                for atom in conjunction:
                    names |= atom.referenced_variables()
            return frozenset(names)

        return _memo(self, "_memo_referenced_vars", compute)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Condition) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()!r}>"


class Atom(Condition):
    """A leaf condition."""

    __slots__ = ()

    def dnf(self) -> list[Conjunction]:
        return [(self,)]

    def referenced_numeric_variables(self) -> set[str]:
        return set()

    def referenced_variables(self) -> set[str]:
        return set()


@dataclass(frozen=True, eq=False, slots=True)
class TrueAtom(Atom):
    """Always true (empty precondition)."""

    def evaluate(self, ctx: EvaluationContext) -> bool:
        return True

    def key(self) -> str:
        return "true"

    def describe(self) -> str:
        return "always"


@dataclass(frozen=True, eq=False, slots=True)
class FalseAtom(Atom):
    """Never true (useful in tests and as an annihilator)."""

    def evaluate(self, ctx: EvaluationContext) -> bool:
        return False

    def key(self) -> str:
        return "false"

    def describe(self) -> str:
        return "never"


@dataclass(frozen=True, eq=False, slots=True)
class NumericAtom(Atom):
    """A linear constraint over sensor variables.

    ``text`` preserves the original CADEL phrasing for explanations.
    """

    constraint: LinearConstraint
    text: str = ""

    def evaluate(self, ctx: EvaluationContext) -> bool:
        assignment: dict[str, float] = {}
        for name in self.constraint.variables():
            value = ctx.numeric(name)
            if value is None:
                return False  # unknown sensor reading: condition not met
            assignment[name] = value
        return self.constraint.satisfied_by(assignment)

    def key(self) -> str:
        # Exact identity: repr() round-trips floats, while the display
        # string's %g formatting (6 significant digits) would collide
        # distinct thresholds — fatal now that keys drive atom dedup.
        def compute() -> str:
            constraint = self.constraint
            terms = ",".join(
                f"{coef!r}*{name}"
                for name, coef in constraint.expr.coefficients
            )
            return (
                f"num({terms};{constraint.expr.constant!r}"
                f"{constraint.relation.value}{constraint.bound!r})"
            )

        return _memo(self, "_memo_key", compute)

    def describe(self) -> str:
        return self.text or str(self.constraint)

    def referenced_numeric_variables(self) -> set[str]:
        return self.constraint.variables()

    def referenced_variables(self) -> set[str]:
        return self.constraint.variables()


@dataclass(frozen=True, eq=False, slots=True)
class DiscreteAtom(Atom):
    """Equality (or negated equality) on a discrete variable.

    Examples: person place (``person:Tom:place == "living room"``),
    device power state (``dev-00001:power:on == "true"``).
    """

    variable: str
    value: str
    negated: bool = False
    text: str = ""

    def evaluate(self, ctx: EvaluationContext) -> bool:
        current = ctx.discrete(self.variable)
        if current is None:
            return False
        matches = current == self.value
        return (not matches) if self.negated else matches

    def key(self) -> str:
        op = "!=" if self.negated else "=="
        return f"disc({self.variable}{op}{self.value})"

    def describe(self) -> str:
        if self.text:
            return self.text
        op = "is not" if self.negated else "is"
        return f"{self.variable} {op} {self.value}"

    def referenced_variables(self) -> set[str]:
        return {self.variable}


@dataclass(frozen=True, eq=False, slots=True)
class MembershipAtom(Atom):
    """Membership test on a set-valued variable (EPG keyword feeds)."""

    variable: str
    member: str
    negated: bool = False
    text: str = ""

    def evaluate(self, ctx: EvaluationContext) -> bool:
        members = ctx.set_members(self.variable)
        present = self.member in members
        return (not present) if self.negated else present

    def key(self) -> str:
        op = "not-in" if self.negated else "in"
        return f"member({self.member} {op} {self.variable})"

    def describe(self) -> str:
        if self.text:
            return self.text
        op = "is not" if self.negated else "is"
        return f"{self.member!r} {op} in {self.variable}"

    def referenced_variables(self) -> set[str]:
        return {self.variable}


@dataclass(frozen=True, eq=False, slots=True)
class TimeWindowAtom(Atom):
    """Active during a time-of-day window, optionally on one weekday.

    ``start``/``end`` are seconds since midnight; ``end <= start`` wraps
    through midnight ("at night" is [21:00, 06:00)).  A full-day window
    with a weekday restriction expresses "every sunday".
    """

    start: float
    end: float
    weekday: int | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if not (0.0 <= self.start <= SECONDS_PER_DAY):
            raise RuleError(f"window start out of range: {self.start}")
        if not (0.0 <= self.end <= SECONDS_PER_DAY):
            raise RuleError(f"window end out of range: {self.end}")
        if self.weekday is not None and not 0 <= self.weekday < 7:
            raise RuleError(f"weekday out of range: {self.weekday}")

    @property
    def wraps(self) -> bool:
        return self.end <= self.start

    def arcs(self) -> list[tuple[float, float]]:
        """The window as non-wrapping [start, end) arcs on the day circle."""
        if not self.wraps:
            return [(self.start, self.end)]
        arcs = []
        if self.start < SECONDS_PER_DAY:
            arcs.append((self.start, SECONDS_PER_DAY))
        if self.end > 0.0:
            arcs.append((0.0, self.end))
        return arcs

    def evaluate(self, ctx: EvaluationContext) -> bool:
        if self.weekday is not None and ctx.weekday() != self.weekday:
            return False
        tod = ctx.time_of_day()
        return any(lo <= tod < hi for lo, hi in self.arcs())

    def key(self) -> str:
        return f"window({self.start},{self.end},{self.weekday})"

    def referenced_variables(self) -> set[str]:
        # Pseudo-variable: lets the engine find time-dependent rules when
        # the clock ticks across window boundaries.
        return {CLOCK_VARIABLE}

    def describe(self) -> str:
        if self.label:
            return self.label
        text = (
            f"between {format_time_of_day(self.start)} "
            f"and {format_time_of_day(self.end)}"
        )
        if self.weekday is not None:
            names = ["monday", "tuesday", "wednesday", "thursday", "friday",
                     "saturday", "sunday"]
            text += f" every {names[self.weekday]}"
        return text


@dataclass(frozen=True, eq=False, slots=True)
class EventAtom(Atom):
    """An instantaneous event: fires for exactly one engine step.

    ``subject=None`` matches anyone ("someone returns home").
    """

    event_type: str
    subject: str | None = None
    text: str = ""

    def evaluate(self, ctx: EvaluationContext) -> bool:
        return ctx.event_fired(self.event_type, self.subject)

    def key(self) -> str:
        return f"event({self.event_type},{self.subject})"

    def referenced_variables(self) -> set[str]:
        # Pseudo-variable: post_event() uses it to find affected rules.
        return {f"event:{self.event_type}"}

    def describe(self) -> str:
        if self.text:
            return self.text
        who = self.subject if self.subject is not None else "someone"
        return f"{who} {self.event_type}"


@dataclass(frozen=True, eq=False, slots=True)
class DurationAtom(Atom):
    """Inner condition continuously true for at least ``seconds``.

    CADEL: "if entrance door is unlocked for 1 hour".  The engine tracks
    per-atom held-since timestamps through :meth:`EvaluationContext.held`.
    """

    inner: Condition
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise RuleError(f"duration must be positive: {self.seconds}")

    def evaluate(self, ctx: EvaluationContext) -> bool:
        currently_true = self.inner.evaluate(ctx)
        return ctx.held(self.key(), currently_true, self.seconds)

    def dnf(self) -> list[Conjunction]:
        # For satisfiability, "inner held for d" requires inner to hold,
        # so each inner conjunct is extended with this marker atom (the
        # marker itself imposes no further static constraint).
        return _memo(
            self, "_memo_dnf",
            lambda: [conj + (self,) for conj in self.inner.dnf()],
        )

    def key(self) -> str:
        return _memo(
            self, "_memo_key",
            lambda: f"held({self.inner.key()},{self.seconds})",
        )

    def describe(self) -> str:
        return f"{self.inner.describe()} for {self.seconds:g} seconds"

    def referenced_variables(self) -> set[str]:
        return self.inner.referenced_variables()

    def referenced_numeric_variables(self) -> set[str]:
        return self.inner.numeric_variables()


def _flatten(kind: type, children: Sequence[Condition]) -> list[Condition]:
    flat: list[Condition] = []
    for child in children:
        if isinstance(child, kind):
            flat.extend(child.children)  # type: ignore[attr-defined]
        else:
            flat.append(child)
    return flat


_DNF_LIMIT = 4096  # guard against exponential blowup on adversarial input


class AndCondition(Condition):
    """Logical conjunction; nested Ands are flattened."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Condition]):
        self.children: tuple[Condition, ...] = tuple(
            _flatten(AndCondition, list(children))
        )
        if not self.children:
            raise RuleError("AndCondition requires at least one child")

    def evaluate(self, ctx: EvaluationContext) -> bool:
        return all(child.evaluate(ctx) for child in self.children)

    def dnf(self) -> list[Conjunction]:
        return _memo(self, "_memo_dnf", self._expand_dnf)

    def _expand_dnf(self) -> list[Conjunction]:
        product: list[Conjunction] = [()]
        for child in self.children:
            expansion: list[Conjunction] = []
            for left in product:
                for right in child.dnf():
                    expansion.append(left + right)
                    if len(expansion) > _DNF_LIMIT:
                        raise RuleError(
                            "condition too complex: DNF exceeds "
                            f"{_DNF_LIMIT} conjunctions"
                        )
            product = expansion
        return product

    def key(self) -> str:
        return _memo(
            self, "_memo_key",
            lambda: "and(" + ",".join(sorted(c.key() for c in self.children)) + ")",
        )

    def describe(self) -> str:
        return " and ".join(
            f"({c.describe()})" if isinstance(c, OrCondition) else c.describe()
            for c in self.children
        )


class OrCondition(Condition):
    """Logical disjunction; nested Ors are flattened."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Condition]):
        self.children: tuple[Condition, ...] = tuple(
            _flatten(OrCondition, list(children))
        )
        if not self.children:
            raise RuleError("OrCondition requires at least one child")

    def evaluate(self, ctx: EvaluationContext) -> bool:
        return any(child.evaluate(ctx) for child in self.children)

    def dnf(self) -> list[Conjunction]:
        return _memo(self, "_memo_dnf", self._expand_dnf)

    def _expand_dnf(self) -> list[Conjunction]:
        result: list[Conjunction] = []
        for child in self.children:
            result.extend(child.dnf())
            if len(result) > _DNF_LIMIT:
                raise RuleError(
                    f"condition too complex: DNF exceeds {_DNF_LIMIT} conjunctions"
                )
        return result

    def key(self) -> str:
        return _memo(
            self, "_memo_key",
            lambda: "or(" + ",".join(sorted(c.key() for c in self.children)) + ")",
        )

    def describe(self) -> str:
        return " or ".join(c.describe() for c in self.children)


def conjoin(conditions: Sequence[Condition]) -> Condition:
    """And-combine, simplifying the 0- and 1-element cases."""
    live = [c for c in conditions if not isinstance(c, TrueAtom)]
    if not live:
        return TrueAtom()
    if len(live) == 1:
        return live[0]
    return AndCondition(live)
