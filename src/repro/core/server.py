"""The home server facade (Fig. 3 of the paper).

Wires every framework module together over the UPnP substrate:

* a :class:`~repro.upnp.control_point.ControlPoint` discovers devices,
  reads sensors (via eventing) and issues appliance commands;
* the :class:`~repro.core.database.RuleDatabase` stores rule objects;
* the :class:`~repro.core.consistency.ConsistencyChecker` and
  :class:`~repro.core.conflict.ConflictChecker` run on every
  registration, exactly in the paper's order (inconsistency first, then
  same-device conflict extraction + satisfiability);
* the :class:`~repro.core.priority.PriorityManager` holds
  context-attached priority orders; when a registration-time conflict
  has no covering order, the pluggable ``conflict_policy`` plays the
  role of the paper's Fig. 7 priority-setup dialog;
* the :class:`~repro.core.engine.RuleEngine` executes rules against the
  live world state.

Sensor readings flow in through UPnP eventing: the server subscribes to
every evented service it discovers and translates variable changes into
engine updates under the canonical naming scheme
``"<udn>:<service_id>:<variable>"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.access import AccessPolicy
from repro.core.conflict import ConflictChecker, ConflictReport
from repro.core.consistency import ConsistencyChecker
from repro.core.database import RuleDatabase
from repro.core.engine import DEFAULT_MAX_TRACE, PromptPolicy, RuleEngine
from repro.core.priority import PriorityManager, PriorityOrder
from repro.core.rule import Rule
from repro.errors import RuleError
from repro.net.bus import NetworkBus
from repro.sim.events import Simulator
from repro.upnp.control_point import ControlPoint
from repro.upnp.registry import DeviceRecord

ConflictPolicy = Callable[[Rule, list[ConflictReport]], PriorityOrder | None]
"""Registration-time conflict hook: may return a new priority order
(the user's dialog answer) or None to register the rule anyway and let
runtime arbitration / prompting handle it."""


def variable_id(udn: str, service_id: str, variable: str) -> str:
    """Canonical world-state variable name for a device state variable."""
    return f"{udn}:{service_id}:{variable}"


def coerce_reading(value: Any, unit: str | None) -> Any:
    """Normalize a raw sensor reading for the engine: ``set``-unit
    variables arrive from UPnP eventing as comma-joined strings and
    become frozensets; everything else passes through."""
    if unit == "set" and isinstance(value, str):
        return frozenset(
            part.strip() for part in value.split(",") if part.strip()
        )
    return value


@dataclass
class RuleStack:
    """One complete rule-serving vertical: storage, checkers, engine and
    the registration pipeline, wired identically for every facade."""

    database: RuleDatabase
    priorities: PriorityManager
    access: AccessPolicy
    consistency: ConsistencyChecker
    conflicts: ConflictChecker
    engine: RuleEngine
    pipeline: RulePipeline


def build_rule_stack(
    simulator: Simulator,
    *,
    dispatch: Callable,
    prompt_policy: PromptPolicy | None = None,
    conflict_policy: ConflictPolicy | None = None,
    prefer_intervals: bool = True,
    incremental: bool = True,
    shared: bool = True,
    wheel: bool = True,
    columnar: bool = True,
    max_trace: int | None = DEFAULT_MAX_TRACE,
    telemetry=None,
) -> RuleStack:
    """Build the database/checkers/engine/pipeline quartet shared by the
    single-home server and every cluster shard — one wiring site, so an
    engine knob added for one facade cannot silently drift from the
    other."""
    database = RuleDatabase()
    priorities = PriorityManager()
    access = AccessPolicy()
    consistency = ConsistencyChecker(prefer_intervals=prefer_intervals)
    conflicts = ConflictChecker(database, prefer_intervals=prefer_intervals)
    engine = RuleEngine(
        database,
        priorities,
        simulator,
        dispatch=dispatch,
        prompt_policy=prompt_policy,
        access_check=lambda rule, spec: access.check(
            rule.owner, spec.device_udn, spec.device_name, spec.action_name,
        ),
        incremental=incremental,
        shared=shared,
        wheel=wheel,
        columnar=columnar,
        max_trace=max_trace,
        telemetry=telemetry,
    )
    pipeline = RulePipeline(
        database, engine, priorities, access, consistency, conflicts,
        conflict_policy,
    )
    return RuleStack(
        database=database, priorities=priorities, access=access,
        consistency=consistency, conflicts=conflicts, engine=engine,
        pipeline=pipeline,
    )


class RulePipeline:
    """The Sect. 4.4 rule-registration pipeline, factored out of the
    single-home facade so cluster shards run the identical code path:
    access check → consistency → conflict extraction → optional priority
    prompt → database add → engine activation (and the mirror-image
    removal path).
    """

    def __init__(
        self,
        database: RuleDatabase,
        engine: RuleEngine,
        priorities: PriorityManager,
        access: AccessPolicy,
        consistency: ConsistencyChecker,
        conflicts: ConflictChecker,
        conflict_policy: ConflictPolicy | None = None,
    ) -> None:
        self.database = database
        self.engine = engine
        self.priorities = priorities
        self.access = access
        self.consistency = consistency
        self.conflicts = conflicts
        self.conflict_policy = conflict_policy
        self.conflict_log: list[ConflictReport] = []

    def register(self, rule: Rule, *, validate: bool = True) -> list[ConflictReport]:
        """Run the full registration pipeline; returns conflicts found.

        ``validate=False`` skips the access/consistency/conflict stages —
        the bulk-load path for pre-vetted populations (benchmarks,
        snapshot restores), where re-checking thousands of rules would
        dominate the measurement.
        """
        if validate:
            self.access.check_rule(rule)
            self.consistency.require_consistent(rule)
            reports = self.conflicts.find_conflicts(rule)
        else:
            reports = []
        if reports:
            self.conflict_log.extend(reports)
            self._maybe_prompt_priority(rule, reports)
        self.database.add(rule)
        self.engine.rule_added(rule)
        return reports

    def _maybe_prompt_priority(
        self, rule: Rule, reports: list[ConflictReport]
    ) -> None:
        """Ask the conflict policy for a priority order when no existing
        order already ranks every involved owner (paper: "If it
        conflicts, our framework prompts users to specify the priority
        among the rules")."""
        needs_prompt = []
        for report in reports:
            owners = {rule.owner, self.database.get(report.existing_rule).owner}
            if not self.priorities.has_order_covering(report.device_udn, owners):
                needs_prompt.append(report)
        if needs_prompt and self.conflict_policy is not None:
            order = self.conflict_policy(rule, needs_prompt)
            if order is not None:
                self.priorities.add_order(order)

    def remove(self, name: str) -> Rule:
        rule = self.database.remove(name)
        self.engine.rule_removed(name)
        return rule


class HomeServer:
    """Top-level entry point of the framework."""

    def __init__(
        self,
        simulator: Simulator,
        bus: NetworkBus,
        *,
        name: str = "home-server",
        prefer_intervals: bool = True,
        prompt_policy: PromptPolicy | None = None,
        conflict_policy: ConflictPolicy | None = None,
        clock_tick_period: float = 60.0,
        incremental: bool = True,
        shared: bool = True,
        wheel: bool = True,
        columnar: bool = True,
        max_trace: int | None = DEFAULT_MAX_TRACE,
        telemetry=None,
    ) -> None:
        self.simulator = simulator
        self.control_point = ControlPoint(bus, simulator, name=name)
        stack = build_rule_stack(
            simulator,
            dispatch=self._dispatch,
            prompt_policy=prompt_policy,
            conflict_policy=conflict_policy,
            prefer_intervals=prefer_intervals,
            incremental=incremental,
            shared=shared,
            wheel=wheel,
            columnar=columnar,
            max_trace=max_trace,
            telemetry=telemetry,
        )
        self.database = stack.database
        self.priorities = stack.priorities
        self.access = stack.access
        self.consistency = stack.consistency
        self.conflicts = stack.conflicts
        self.engine = stack.engine
        self._pipeline = stack.pipeline
        self._variable_units: dict[str, str] = {}
        self._subscribed: set[tuple[str, str]] = set()
        self._clock_task = simulator.every(
            clock_tick_period, self.engine.clock_tick
        )

    # -- discovery & sensing --------------------------------------------------------

    def discover(self) -> list[DeviceRecord]:
        """Search the network and subscribe to every evented service of
        every discovered device; returns the discovered records."""
        records = self.control_point.search()
        for record in records:
            self._subscribe_device(record)
        return records

    def _subscribe_device(self, record: DeviceRecord) -> None:
        for service in record.description.get("services", ()):
            service_id = service["service_id"]
            key = (record.udn, service_id)
            evented = [v for v in service.get("variables", ()) if v.get("sends_events")]
            if not evented or key in self._subscribed:
                continue
            for variable in evented:
                vid = variable_id(record.udn, service_id, variable["name"])
                self._variable_units[vid] = variable.get("unit", "")
            self.control_point.subscribe(record.udn, service_id, self._on_device_event)
            self._subscribed.add(key)

    def _on_device_event(
        self, udn: str, service_id: str, changes: dict[str, Any]
    ) -> None:
        for variable, value in changes.items():
            self.ingest(variable_id(udn, service_id, variable), value)

    def ingest(self, variable: str, value: Any) -> None:
        """Feed one world-state reading to the engine — the same path
        device eventing uses, public so external feeds (cluster ingest
        buses, replayed sensor logs) reach the engine identically."""
        self.engine.ingest(
            variable, coerce_reading(value, self._variable_units.get(variable))
        )

    def ingest_batch(
        self, readings: "list[tuple[str, Any]]"
    ) -> tuple[int, int]:
        """Feed a batch of readings in order through the engine's bulk
        entry point (unit coercion per reading, identical semantics to
        per-reading :meth:`ingest`); returns the batch's
        ``(atoms_flipped, clauses_touched)`` counter deltas."""
        units = self._variable_units
        return self.engine.ingest_batch(
            (variable, coerce_reading(value, units.get(variable)))
            for variable, value in readings
        )

    def post_event(self, event_type: str, subject: str | None = None) -> None:
        """Forward an instantaneous event (arrivals etc.) to the engine."""
        self.engine.post_event(event_type, subject)

    # -- rule registration (the Sect. 4.4 pipeline) -------------------------------------

    def register_rule(self, rule: Rule) -> list[ConflictReport]:
        """Register a rule: consistency check, conflict check, optional
        priority prompt, then activation.  Returns the conflicts found
        (empty list = clean registration).

        Raises:
            InconsistentRuleError: the condition can never hold.
            DuplicateRuleError: the rule name is taken.
            AccessDeniedError: the owner lacks privileges for the
                rule's device actions (Sect. 6 security extension).
        """
        return self._pipeline.register(rule)

    def remove_rule(self, name: str) -> Rule:
        return self._pipeline.remove(name)

    @property
    def conflict_policy(self) -> ConflictPolicy | None:
        return self._pipeline.conflict_policy

    @conflict_policy.setter
    def conflict_policy(self, policy: ConflictPolicy | None) -> None:
        self._pipeline.conflict_policy = policy

    @property
    def conflict_log(self) -> list[ConflictReport]:
        """Every conflict report the registration pipeline produced."""
        return self._pipeline.conflict_log

    def add_priority_order(self, order: PriorityOrder) -> PriorityOrder:
        return self.priorities.add_order(order)

    # -- device control ---------------------------------------------------------------------

    def _dispatch(self, spec) -> None:
        self.control_point.invoke(
            spec.device_udn, spec.service_id, spec.action_name, spec.arguments()
        )

    # -- introspection -----------------------------------------------------------------------

    def trace(self) -> list:
        return self.engine.trace

    def shutdown(self) -> None:
        self._clock_task.cancel()
