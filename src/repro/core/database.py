"""Indexed rule database.

The conflict-check path of the paper's E2 experiment starts by
"extract[ing] existing rules which specify the same device as the new
rule"; with 10,000 registered rules that extraction must not scan.  The
database therefore maintains secondary indexes by device UDN, owner and
referenced variable (the last one drives engine re-evaluation).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.rule import Rule
from repro.errors import DuplicateRuleError, UnknownRuleError


class RuleDatabase:
    """In-memory rule store with device/owner/variable indexes."""

    def __init__(self) -> None:
        self._by_name: dict[str, Rule] = {}
        self._by_device: dict[str, set[str]] = {}
        self._by_owner: dict[str, set[str]] = {}
        self._by_variable: dict[str, set[str]] = {}

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Rule]:
        return iter(list(self._by_name.values()))

    def add(self, rule: Rule) -> None:
        """Register a rule; names are unique."""
        if rule.name in self._by_name:
            raise DuplicateRuleError(f"rule name already registered: {rule.name!r}")
        self._by_name[rule.name] = rule
        for udn in rule.devices():
            self._by_device.setdefault(udn, set()).add(rule.name)
        self._by_owner.setdefault(rule.owner, set()).add(rule.name)
        for variable in rule.condition.referenced_variables():
            self._by_variable.setdefault(variable, set()).add(rule.name)
        if rule.until is not None:
            for variable in rule.until.referenced_variables():
                self._by_variable.setdefault(variable, set()).add(rule.name)

    def remove(self, name: str) -> Rule:
        """Deregister and return a rule; unknown names raise."""
        rule = self._by_name.pop(name, None)
        if rule is None:
            raise UnknownRuleError(f"no rule named {name!r}")
        for udn in rule.devices():
            self._discard(self._by_device, udn, name)
        self._discard(self._by_owner, rule.owner, name)
        variables = set(rule.condition.referenced_variables())
        if rule.until is not None:
            variables |= rule.until.referenced_variables()
        for variable in variables:
            self._discard(self._by_variable, variable, name)
        return rule

    @staticmethod
    def _discard(index: dict[str, set[str]], key: str, name: str) -> None:
        bucket = index.get(key)
        if bucket is not None:
            bucket.discard(name)
            if not bucket:
                del index[key]

    def get(self, name: str) -> Rule:
        rule = self._by_name.get(name)
        if rule is None:
            raise UnknownRuleError(f"no rule named {name!r}")
        return rule

    def all_rules(self) -> list[Rule]:
        return list(self._by_name.values())

    # -- indexed extraction ----------------------------------------------------

    def rules_for_device(self, udn: str) -> list[Rule]:
        """Indexed same-device extraction (the E2 step-1 query)."""
        return self._collect(self._by_device.get(udn, ()))

    def rules_for_device_scan(self, udn: str) -> list[Rule]:
        """Unindexed linear scan over all rules — baseline for ablation A2."""
        return [rule for rule in self._by_name.values() if udn in rule.devices()]

    def rules_of_owner(self, owner: str) -> list[Rule]:
        return self._collect(self._by_owner.get(owner, ()))

    def rules_reading_variable(self, variable: str) -> list[Rule]:
        """Rules whose conditions reference a variable (engine dispatch)."""
        return self._collect(self._by_variable.get(variable, ()))

    def _collect(self, names: Iterable[str]) -> list[Rule]:
        rules = [self._by_name[n] for n in names if n in self._by_name]
        rules.sort(key=lambda r: r.rule_id)
        return rules
