"""Indexed rule database.

The conflict-check path of the paper's E2 experiment starts by
"extract[ing] existing rules which specify the same device as the new
rule"; with 10,000 registered rules that extraction must not scan.  The
database therefore maintains secondary indexes by device UDN, owner and
referenced variable, all with presorted cached buckets.

On top of those rule-level indexes sits the **atom-level subscription
index** that drives incremental evaluation (see :mod:`repro.core.plan`):

* every registered condition is compiled once into a refcounted
  :class:`CompiledPlan`, shared between rules with equal conditions;
* every static atom is deduplicated by key into an :class:`AtomEntry`
  holding its subscriber rules and their plan bit;
* per variable, atoms are organised for O(log n + flips) delta queries:
  single-variable inequalities live in **sorted threshold lists**
  (bisect over the old/new value finds exactly the atoms whose truth
  may have crossed), discrete equality atoms in value-keyed maps,
  membership atoms in member-keyed maps, and the rare generic shapes
  (multi-variable constraints, equalities) in small recheck buckets;
* rules the engine must wake on *any* referenced-variable change
  (stateful duration plans and plans with volatile time/event atoms)
  are registered in the variable-watch index.

All buckets are pruned on removal, so a long-running server that churns
rules does not leak index entries.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator

from repro.core.condition import DiscreteAtom, MembershipAtom, NumericAtom
from repro.core.plan import CompiledPlan, compile_condition, numeric_threshold
from repro.core.rule import Rule
from repro.errors import DuplicateRuleError, UnknownRuleError

_EMPTY: frozenset[str] = frozenset()


class AtomEntry:
    """One deduplicated static atom and the rules subscribed to it."""

    __slots__ = ("key", "atom", "subscribers")

    def __init__(self, key: str, atom) -> None:
        self.key = key
        self.atom = atom
        self.subscribers: dict[str, int] = {}  # rule name -> plan bit

    def __repr__(self) -> str:
        return f"<AtomEntry {self.key!r} subs={len(self.subscribers)}>"


class _NameIndex:
    """name-bucket index with cached, rule_id-presorted materialisation."""

    __slots__ = ("_buckets", "_cache")

    def __init__(self) -> None:
        self._buckets: dict[str, set[str]] = {}
        self._cache: dict[str, list[Rule]] = {}

    def add(self, key: str, name: str) -> None:
        self._buckets.setdefault(key, set()).add(name)
        self._cache.pop(key, None)

    def discard(self, key: str, name: str) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(name)
        self._cache.pop(key, None)
        if not bucket:
            del self._buckets[key]

    def sorted_rules(self, key: str, by_name: dict[str, Rule]) -> list[Rule]:
        cached = self._cache.get(key)
        if cached is None:
            cached = sorted(
                (by_name[n] for n in self._buckets.get(key, ())),
                key=lambda r: r.rule_id,
            )
            self._cache[key] = cached
        return list(cached)  # callers own their copy, like the seed's _collect

    def __len__(self) -> int:
        return len(self._buckets)

    def __contains__(self, key: str) -> bool:
        return key in self._buckets


class _NumericBand:
    """Threshold-sorted numeric atoms of one variable.

    ``below`` atoms are true for values below their threshold, ``above``
    atoms for values above; both are kept as parallel (threshold, entry)
    lists sorted by threshold so a value change ``old -> new`` narrows
    candidates to the thresholds inside ``[min, max]`` (widened by the
    largest comparison guard seen) via bisect.  ``recheck`` holds shapes
    with no single-threshold structure.
    """

    __slots__ = ("below_t", "below_e", "above_t", "above_e", "recheck",
                 "guard")

    def __init__(self) -> None:
        self.below_t: list[float] = []
        self.below_e: list[AtomEntry] = []
        self.above_t: list[float] = []
        self.above_e: list[AtomEntry] = []
        self.recheck: list[AtomEntry] = []
        self.guard = 0.0

    @staticmethod
    def _insert(ts: list[float], es: list[AtomEntry], threshold: float,
                entry: AtomEntry) -> None:
        index = bisect_left(ts, threshold)
        ts.insert(index, threshold)
        es.insert(index, entry)

    @staticmethod
    def _remove(ts: list[float], es: list[AtomEntry], threshold: float,
                entry: AtomEntry) -> None:
        index = bisect_left(ts, threshold)
        while index < len(ts) and ts[index] == threshold:
            if es[index] is entry:
                del ts[index]
                del es[index]
                return
            index += 1

    def insert(self, kind: str, threshold: float, guard: float,
               entry: AtomEntry) -> None:
        if guard > self.guard:
            self.guard = guard
        if kind == "below":
            self._insert(self.below_t, self.below_e, threshold, entry)
        else:
            self._insert(self.above_t, self.above_e, threshold, entry)

    def remove(self, kind: str, threshold: float, entry: AtomEntry) -> None:
        if kind == "below":
            self._remove(self.below_t, self.below_e, threshold, entry)
        else:
            self._remove(self.above_t, self.above_e, threshold, entry)

    def candidates(self, old: float | None, new: float) -> list[AtomEntry]:
        # NaN breaks the ordering the bisect window relies on (every
        # comparison is False, so the slice silently misses flips):
        # fall back to checking every atom, like a first reading.
        if old is None or old != old or new != new:
            return self.below_e + self.above_e + self.recheck
        lo, hi = (old, new) if old <= new else (new, old)
        lo -= self.guard
        hi += self.guard
        out = list(self.recheck)
        out.extend(
            self.below_e[bisect_left(self.below_t, lo):
                         bisect_right(self.below_t, hi)]
        )
        out.extend(
            self.above_e[bisect_left(self.above_t, lo):
                         bisect_right(self.above_t, hi)]
        )
        return out

    @property
    def empty(self) -> bool:
        return not (self.below_e or self.above_e or self.recheck)


class _DiscreteBand:
    """Value-keyed discrete atoms of one variable."""

    __slots__ = ("eq", "neq")

    def __init__(self) -> None:
        self.eq: dict[str, list[AtomEntry]] = {}
        self.neq: dict[str, list[AtomEntry]] = {}

    def insert(self, atom: DiscreteAtom, entry: AtomEntry) -> None:
        table = self.neq if atom.negated else self.eq
        table.setdefault(atom.value, []).append(entry)

    def remove(self, atom: DiscreteAtom, entry: AtomEntry) -> None:
        table = self.neq if atom.negated else self.eq
        bucket = table.get(atom.value)
        if bucket is None:
            return
        try:
            bucket.remove(entry)
        except ValueError:
            return
        if not bucket:
            del table[atom.value]

    def candidates(self, old: str | None, new: str) -> list[AtomEntry]:
        if old is None:
            out: list[AtomEntry] = []
            for bucket in self.eq.values():
                out.extend(bucket)
            for bucket in self.neq.values():
                out.extend(bucket)
            return out
        out = list(self.eq.get(old, ()))
        out.extend(self.eq.get(new, ()))
        out.extend(self.neq.get(old, ()))
        out.extend(self.neq.get(new, ()))
        return out

    @property
    def empty(self) -> bool:
        return not (self.eq or self.neq)


class _SetBand:
    """Member-keyed membership atoms of one set-valued variable."""

    __slots__ = ("by_member",)

    def __init__(self) -> None:
        self.by_member: dict[str, list[AtomEntry]] = {}

    def insert(self, atom: MembershipAtom, entry: AtomEntry) -> None:
        self.by_member.setdefault(atom.member, []).append(entry)

    def remove(self, atom: MembershipAtom, entry: AtomEntry) -> None:
        bucket = self.by_member.get(atom.member)
        if bucket is None:
            return
        try:
            bucket.remove(entry)
        except ValueError:
            return
        if not bucket:
            del self.by_member[atom.member]

    def candidates(self, old: frozenset[str],
                   new: frozenset[str]) -> list[AtomEntry]:
        out: list[AtomEntry] = []
        for member in old ^ new:
            out.extend(self.by_member.get(member, ()))
        return out

    @property
    def empty(self) -> bool:
        return not self.by_member


class RuleDatabase:
    """In-memory rule store with device/owner/variable/atom indexes."""

    def __init__(self) -> None:
        self._by_name: dict[str, Rule] = {}
        self._by_device = _NameIndex()
        self._by_owner = _NameIndex()
        self._by_variable = _NameIndex()
        # -- incremental-evaluation structures --------------------------------
        self._plans: dict[str, CompiledPlan] = {}       # condition key -> plan
        self._plan_refs: dict[str, int] = {}
        self._plan_by_rule: dict[str, CompiledPlan] = {}
        self._atom_entries: dict[str, AtomEntry] = {}
        self._numeric_bands: dict[str, _NumericBand] = {}
        self._discrete_bands: dict[str, _DiscreteBand] = {}
        self._set_bands: dict[str, _SetBand] = {}
        self._var_watch: dict[str, set[str]] = {}

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Rule]:
        return iter(list(self._by_name.values()))

    # -- registration ----------------------------------------------------------

    def add(self, rule: Rule) -> None:
        """Register a rule; names are unique."""
        if rule.name in self._by_name:
            raise DuplicateRuleError(f"rule name already registered: {rule.name!r}")
        plan = self._acquire_plan(rule)
        self._by_name[rule.name] = rule
        self._plan_by_rule[rule.name] = plan
        for udn in rule.devices():
            self._by_device.add(udn, rule.name)
        self._by_owner.add(rule.owner, rule.name)
        variables = set(plan.variables)
        if rule.until is not None:
            variables |= rule.until.referenced_variables()
        for variable in variables:
            self._by_variable.add(variable, rule.name)
        if plan.has_duration or plan.volatile_slots:
            # Seed semantics: these rules must wake on every referenced-
            # variable change, not only on static-atom flips.
            for variable in variables:
                self._var_watch.setdefault(variable, set()).add(rule.name)
        if not plan.has_duration:
            for bit, key, atom in plan.static_slots:
                entry = self._atom_entries.get(key)
                if entry is None:
                    entry = AtomEntry(key, atom)
                    self._atom_entries[key] = entry
                    self._index_atom(entry)
                entry.subscribers[rule.name] = bit

    def remove(self, name: str) -> Rule:
        """Deregister and return a rule; unknown names raise.

        Every index bucket the rule participated in is pruned when it
        empties — removal must not leak entries.
        """
        rule = self._by_name.pop(name, None)
        if rule is None:
            raise UnknownRuleError(f"no rule named {name!r}")
        plan = self._plan_by_rule.pop(name)
        for udn in rule.devices():
            self._by_device.discard(udn, name)
        self._by_owner.discard(rule.owner, name)
        variables = set(plan.variables)
        if rule.until is not None:
            variables |= rule.until.referenced_variables()
        for variable in variables:
            self._by_variable.discard(variable, name)
            watchers = self._var_watch.get(variable)
            if watchers is not None:
                watchers.discard(name)
                if not watchers:
                    del self._var_watch[variable]
        if not plan.has_duration:
            for _bit, key, _atom in plan.static_slots:
                entry = self._atom_entries.get(key)
                if entry is None:
                    continue
                entry.subscribers.pop(name, None)
                if not entry.subscribers:
                    self._unindex_atom(entry)
                    del self._atom_entries[key]
        self._release_plan(plan)
        return rule

    def _acquire_plan(self, rule: Rule) -> CompiledPlan:
        key = rule.condition.key()
        plan = self._plans.get(key)
        if plan is None:
            plan = compile_condition(rule.condition)
            self._plans[key] = plan
        self._plan_refs[key] = self._plan_refs.get(key, 0) + 1
        return plan

    def _release_plan(self, plan: CompiledPlan) -> None:
        key = plan.source_key
        refs = self._plan_refs.get(key, 0) - 1
        if refs <= 0:
            self._plan_refs.pop(key, None)
            self._plans.pop(key, None)
        else:
            self._plan_refs[key] = refs

    def _index_atom(self, entry: AtomEntry) -> None:
        atom = entry.atom
        if isinstance(atom, NumericAtom):
            descriptor = numeric_threshold(atom)
            if descriptor is not None:
                variable, kind, threshold, guard = descriptor
                band = self._numeric_bands.setdefault(variable, _NumericBand())
                band.insert(kind, threshold, guard, entry)
            else:
                for variable in atom.referenced_variables():
                    band = self._numeric_bands.setdefault(variable,
                                                          _NumericBand())
                    band.recheck.append(entry)
        elif isinstance(atom, DiscreteAtom):
            band = self._discrete_bands.setdefault(atom.variable,
                                                   _DiscreteBand())
            band.insert(atom, entry)
        elif isinstance(atom, MembershipAtom):
            band = self._set_bands.setdefault(atom.variable, _SetBand())
            band.insert(atom, entry)
        # Other static shapes have no world variable to index.

    def _unindex_atom(self, entry: AtomEntry) -> None:
        atom = entry.atom
        if isinstance(atom, NumericAtom):
            descriptor = numeric_threshold(atom)
            if descriptor is not None:
                variable, kind, threshold, _guard = descriptor
                band = self._numeric_bands.get(variable)
                if band is not None:
                    band.remove(kind, threshold, entry)
                    if band.empty:
                        del self._numeric_bands[variable]
            else:
                for variable in atom.referenced_variables():
                    band = self._numeric_bands.get(variable)
                    if band is None:
                        continue
                    try:
                        band.recheck.remove(entry)
                    except ValueError:
                        pass
                    if band.empty:
                        del self._numeric_bands[variable]
        elif isinstance(atom, DiscreteAtom):
            band = self._discrete_bands.get(atom.variable)
            if band is not None:
                band.remove(atom, entry)
                if band.empty:
                    del self._discrete_bands[atom.variable]
        elif isinstance(atom, MembershipAtom):
            band = self._set_bands.get(atom.variable)
            if band is not None:
                band.remove(atom, entry)
                if band.empty:
                    del self._set_bands[atom.variable]

    # -- lookup ----------------------------------------------------------------

    def get(self, name: str) -> Rule:
        rule = self._by_name.get(name)
        if rule is None:
            raise UnknownRuleError(f"no rule named {name!r}")
        return rule

    def all_rules(self) -> list[Rule]:
        return list(self._by_name.values())

    def plan_of(self, name: str) -> CompiledPlan:
        """The compiled plan of a registered rule's condition."""
        plan = self._plan_by_rule.get(name)
        if plan is None:
            raise UnknownRuleError(f"no rule named {name!r}")
        return plan

    def has_atom(self, key: str) -> bool:
        """Whether any registered rule still subscribes to an atom."""
        return key in self._atom_entries

    # -- indexed extraction ----------------------------------------------------

    def rules_for_device(self, udn: str) -> list[Rule]:
        """Indexed same-device extraction (the E2 step-1 query)."""
        return self._by_device.sorted_rules(udn, self._by_name)

    def rules_for_device_scan(self, udn: str) -> list[Rule]:
        """Unindexed linear scan over all rules — baseline for ablation A2."""
        return [rule for rule in self._by_name.values() if udn in rule.devices()]

    def rules_of_owner(self, owner: str) -> list[Rule]:
        return self._by_owner.sorted_rules(owner, self._by_name)

    def rules_reading_variable(self, variable: str) -> list[Rule]:
        """Rules whose conditions reference a variable (engine dispatch)."""
        return self._by_variable.sorted_rules(variable, self._by_name)

    # -- atom-delta queries (incremental engine hot path) ----------------------

    def numeric_candidates(self, variable: str, old: float | None,
                           new: float) -> list[AtomEntry]:
        """Atoms on ``variable`` whose truth *may* have flipped."""
        band = self._numeric_bands.get(variable)
        if band is None:
            return []
        return band.candidates(old, new)

    def discrete_candidates(self, variable: str, old: str | None,
                            new: str) -> list[AtomEntry]:
        band = self._discrete_bands.get(variable)
        if band is None:
            return []
        return band.candidates(old, new)

    def set_candidates(self, variable: str, old: frozenset[str],
                       new: frozenset[str]) -> list[AtomEntry]:
        band = self._set_bands.get(variable)
        if band is None:
            return []
        return band.candidates(old, new)

    def variable_watchers(self, variable: str) -> frozenset[str] | set[str]:
        """Rules that must be woken on any change of ``variable``."""
        return self._var_watch.get(variable, _EMPTY)
