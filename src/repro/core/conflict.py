"""Conflict detection among rules (the paper's E2 path).

Paper, Sect. 4.4, three steps on every registration:

1. extract the registered rules that control the same device as the new
   rule (indexed in :class:`~repro.core.database.RuleDatabase`);
2. for each extracted rule, concatenate the two condition conjunctions;
3. check whether the combined system has a feasible solution.

A pair conflicts when both conditions can hold simultaneously **and**
the two rules would drive the device differently (identical effects are
harmless, which the paper implies by defining conflict as performing
"different actions to the same device").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.database import RuleDatabase
from repro.core.rule import Rule
from repro.core.satisfiability import conditions_jointly_satisfiable
from repro.errors import RuleError


@dataclass(frozen=True)
class ConflictReport:
    """One detected pairwise conflict."""

    new_rule: str
    existing_rule: str
    device_udn: str
    device_name: str

    def describe(self) -> str:
        return (
            f"rule {self.new_rule!r} conflicts with {self.existing_rule!r} "
            f"over device {self.device_name!r}"
        )


class ConflictChecker:
    """Pairwise conflict detection against a rule database."""

    def __init__(self, database: RuleDatabase, *,
                 prefer_intervals: bool = True,
                 use_device_index: bool = True):
        self.database = database
        self.prefer_intervals = prefer_intervals
        self.use_device_index = use_device_index

    # -- extraction (step 1) ---------------------------------------------------

    def extract_same_device_rules(self, rule: Rule) -> list[Rule]:
        """Registered rules sharing at least one target device with
        ``rule`` (excluding the rule itself)."""
        candidates: dict[str, Rule] = {}
        for udn in rule.devices():
            if self.use_device_index:
                matches = self.database.rules_for_device(udn)
            else:
                matches = self.database.rules_for_device_scan(udn)
            for match in matches:
                if match.name != rule.name:
                    candidates[match.name] = match
        return sorted(candidates.values(), key=lambda r: r.rule_id)

    # -- pairwise check (steps 2-3) ----------------------------------------------

    def conflicts_with(self, new_rule: Rule, existing: Rule) -> ConflictReport | None:
        """Check one pair; returns a report or None."""
        shared = self._shared_devices(new_rule, existing)
        if not shared:
            return None
        if not self._effects_differ(new_rule, existing, shared):
            return None
        if not conditions_jointly_satisfiable(
            new_rule.condition,
            existing.condition,
            prefer_intervals=self.prefer_intervals,
        ):
            return None
        udn, name = shared[0]
        return ConflictReport(
            new_rule=new_rule.name,
            existing_rule=existing.name,
            device_udn=udn,
            device_name=name,
        )

    def find_conflicts(self, new_rule: Rule) -> list[ConflictReport]:
        """Full registration-time check of ``new_rule`` against the DB."""
        reports = []
        for existing in self.extract_same_device_rules(new_rule):
            if not existing.enabled:
                continue
            report = self.conflicts_with(new_rule, existing)
            if report is not None:
                reports.append(report)
        return reports

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _specs_for(rule: Rule, udn: str):
        specs = []
        if rule.action.device_udn == udn:
            specs.append(rule.action)
        if rule.fallback is not None and rule.fallback.device_udn == udn:
            specs.append(rule.fallback)
        return specs

    def _shared_devices(self, a: Rule, b: Rule) -> list[tuple[str, str]]:
        """UDNs driven by both rules, with a display name for dialogs.

        Only *driving* actions (primary/fallback) count — a stop_action
        that merely reverts a device is not a competing use.
        """
        a_udns = {a.action.device_udn}
        if a.fallback is not None:
            a_udns.add(a.fallback.device_udn)
        shared = []
        for udn in sorted(a_udns):
            b_specs = self._specs_for(b, udn)
            if b_specs:
                name = self._specs_for(a, udn)[0].device_name
                shared.append((udn, name))
        return shared

    def _effects_differ(self, a: Rule, b: Rule,
                        shared: list[tuple[str, str]]) -> bool:
        for udn, _ in shared:
            for spec_a in self._specs_for(a, udn):
                for spec_b in self._specs_for(b, udn):
                    if not spec_a.same_effect_as(spec_b):
                        return True
        return False
