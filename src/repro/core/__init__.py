"""Core framework: rule IR, database, consistency/conflict checking,
priorities and the rule-execution engine.

This package is the paper's home-server brain (Fig. 3):

* :mod:`repro.core.condition` / :mod:`repro.core.action` /
  :mod:`repro.core.rule` — the *rule object* representation CADEL
  sentences compile into ("the rule execution module does not execute
  rules by interpreting CADEL descriptions" — Sect. 4.1).
* :mod:`repro.core.plan` — compiled condition plans (deduplicated atom
  slots + DNF clause bitmasks), the incremental-evaluation IR.
* :mod:`repro.core.database` — indexed rule storage, including the
  atom-level subscription index that drives incremental evaluation.
* :mod:`repro.core.consistency` — the inconsistency check run at
  registration time (condition can never hold → warn the user).
* :mod:`repro.core.conflict` — same-device extraction + joint
  satisfiability, the paper's E2 experiment.
* :mod:`repro.core.priority` — context-attached priority orders
  (Sect. 3.2 "Avoidance of Device Conflict").
* :mod:`repro.core.network` — the shared evaluation network deduping
  identical DNF clauses across rules (Rete-style beta memo).
* :mod:`repro.core.wheel` — the time-window wheel waking clock rules
  only at their next window-boundary crossing.
* :mod:`repro.core.engine` — event-driven rule execution with runtime
  arbitration.
* :mod:`repro.core.server` — the :class:`HomeServer` facade wiring all
  modules over the UPnP substrate.
"""

from repro.core.access import AccessDeniedError, AccessPolicy, Grant
from repro.core.action import ActionSpec, Setting
from repro.core.condition import (
    AndCondition,
    Condition,
    DiscreteAtom,
    DurationAtom,
    EventAtom,
    FalseAtom,
    MembershipAtom,
    NumericAtom,
    OrCondition,
    TimeWindowAtom,
    TrueAtom,
)
from repro.core.conflict import ConflictChecker, ConflictReport
from repro.core.consistency import ConsistencyChecker
from repro.core.database import RuleDatabase
from repro.core.engine import RuleEngine
from repro.core.network import ClauseNode, SharedNetwork
from repro.core.plan import CompiledPlan, compile_condition
from repro.core.wheel import TimeWheel, next_boundary
from repro.core.priority import PriorityManager, PriorityOrder
from repro.core.rule import Rule
from repro.core.server import HomeServer

__all__ = [
    "AccessDeniedError",
    "AccessPolicy",
    "Grant",
    "ActionSpec",
    "Setting",
    "AndCondition",
    "Condition",
    "DiscreteAtom",
    "DurationAtom",
    "EventAtom",
    "FalseAtom",
    "MembershipAtom",
    "NumericAtom",
    "OrCondition",
    "TimeWindowAtom",
    "TrueAtom",
    "ConflictChecker",
    "ConflictReport",
    "ConsistencyChecker",
    "RuleDatabase",
    "RuleEngine",
    "ClauseNode",
    "SharedNetwork",
    "TimeWheel",
    "next_boundary",
    "CompiledPlan",
    "compile_condition",
    "PriorityManager",
    "PriorityOrder",
    "Rule",
    "HomeServer",
]
