"""Context-attached priority orders.

Paper, Sect. 3.2: "users can define multiple different priorities for
the same device and attach a context to each of them.  For example, to
the TV, our framework can let Alan have a higher priority than Tom in
the context that Alan got home from work, and at the same time it can
give a higher priority to Tom in the context that today is Tom's
birthday."

A :class:`PriorityOrder` is a total order over *owners* (the paper's
Fig. 7 dialog arranges conflicting users' rules top-to-bottom), scoped
to one device and guarded by an optional context condition.  The
:class:`PriorityManager` stores every order and, given a runtime
conflict, returns the first order whose context currently holds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.condition import Condition, EvaluationContext, TrueAtom
from repro.core.rule import Rule
from repro.errors import RuleError

_order_ids = itertools.count(1)


@dataclass
class PriorityOrder:
    """A total order over owners for one device, valid under a context.

    Attributes:
        device_udn: the contested device.
        ranking: owners from highest to lowest priority.
        context: the order applies only while this condition holds
            (default: always).
        label: human description ("Alan got home from work").
    """

    device_udn: str
    ranking: tuple[str, ...]
    context: Condition = field(default_factory=TrueAtom)
    label: str = ""
    order_id: int = field(default_factory=lambda: next(_order_ids))

    def __post_init__(self) -> None:
        if not self.ranking:
            raise RuleError("priority order needs at least one owner")
        if len(set(self.ranking)) != len(self.ranking):
            raise RuleError(f"duplicate owners in ranking: {self.ranking}")

    def rank_of(self, owner: str) -> int | None:
        """0 is highest priority; None when the owner is unranked."""
        try:
            return self.ranking.index(owner)
        except ValueError:
            return None

    def applies(self, ctx: EvaluationContext) -> bool:
        return self.context.evaluate(ctx)

    def describe(self) -> str:
        text = " > ".join(self.ranking)
        if self.label:
            text += f" (when {self.label})"
        return text


class PriorityManager:
    """All registered priority orders, indexed by device."""

    def __init__(self) -> None:
        self._orders: dict[str, list[PriorityOrder]] = {}

    def add_order(self, order: PriorityOrder) -> PriorityOrder:
        """Register an order; later-registered orders win ties, matching
        the paper's flow where the user (re)specifies the order when a
        new conflict is reported — newest decision is freshest."""
        self._orders.setdefault(order.device_udn, []).insert(0, order)
        return order

    def remove_order(self, order_id: int) -> None:
        for orders in self._orders.values():
            for order in orders:
                if order.order_id == order_id:
                    orders.remove(order)
                    return
        raise RuleError(f"no priority order with id {order_id}")

    def orders_for_device(self, device_udn: str) -> list[PriorityOrder]:
        return list(self._orders.get(device_udn, ()))

    def has_order_covering(self, device_udn: str, owners: Iterable[str]) -> bool:
        """Is there any order on this device ranking all given owners?
        Used at registration time to decide whether to prompt the user."""
        owner_set = set(owners)
        return any(
            owner_set <= set(order.ranking)
            for order in self._orders.get(device_udn, ())
        )

    def applicable_order(
        self, device_udn: str, ctx: EvaluationContext
    ) -> PriorityOrder | None:
        """First registered order for the device whose context holds now."""
        for order in self._orders.get(device_udn, ()):
            if order.applies(ctx):
                return order
        return None

    def arbitrate(
        self,
        device_udn: str,
        competing: Sequence[Rule],
        ctx: EvaluationContext,
    ) -> tuple[Rule | None, PriorityOrder | None]:
        """Pick the winning rule among ``competing`` for a device.

        Returns (winner, order_used).  ``winner`` is None when no
        applicable order ranks any competitor — the caller then falls
        back to its prompt policy (the paper's conflict dialog).
        """
        if not competing:
            raise RuleError("arbitrate called with no competing rules")
        if len(competing) == 1:
            return competing[0], None
        for order in self._orders.get(device_udn, ()):
            if not order.applies(ctx):
                continue
            ranked = [
                (order.rank_of(rule.owner), rule.rule_id, rule)
                for rule in competing
                if order.rank_of(rule.owner) is not None
            ]
            if ranked:
                ranked.sort(key=lambda item: (item[0], item[1]))
                return ranked[0][2], order
        return None, None
