"""Columnar evaluation backend — interned slots + array state + batch sweeps.

The :class:`~repro.core.network.SharedNetwork` already deduplicates
clauses across rules, but its state is an object graph: per-clause
Python ``ClauseNode`` instances, dict-keyed atom→node indexes, and a
per-candidate Python ``atom.evaluate`` call for every threshold a
numeric write crosses.  At 10k+ rules an ingest that sweeps the whole
threshold band spends nearly all of its time in that per-atom
interpreter loop.

This module flattens the same state into contiguous columns:

* a :class:`SlotInterner` assigns dense integer ids to deduplicated
  static atoms and clauses at registration time (freed ids are
  recycled, so long-running churn keeps the columns compact);
* atom truth is one global ``bytearray`` (one byte per atom slot);
* clause truth is a *remaining-false-atom counter* per clause in one
  ``array('i')`` — a clause is true exactly when its counter is zero,
  so an atom flip is a ``±1`` on each containing clause and a clause
  truth flip is a zero crossing;
* the atom→clause fan-out is a CSR-style pair of index arrays
  (``offsets``/``flat``), rebuilt lazily after churn, so a vectorized
  sweep can gather every affected clause of every flipped atom with
  numpy ``repeat``/``unique``/``bincount`` instead of nested Python
  loops;
* per variable, single-threshold numeric atoms live in parallel sorted
  arrays of ``(threshold, coef, const, bound, relation)`` — a write
  ``old → new`` selects the guard-widened bisect window (exactly the
  candidate set :class:`~repro.core.database._NumericBand` produces)
  and verifies **all** candidates in one numpy expression that
  replicates :meth:`~repro.solver.linear.LinearConstraint.satisfied_by`
  bit for bit.

numpy is optional: the backend probes for it at import time and falls
back to pure-stdlib scalar loops (same arrays, same semantics), and
windows smaller than :data:`VECTOR_MIN` candidates always take the
scalar loop — the numpy round-trip costs more than it saves there.

Equivalence contract: the backend is driven by the engine exactly like
the shared network — one verified flip per changed atom, wake the
subscribers of clauses whose truth crossed — so rule wake sets and
truth values are identical to both object-graph paths by construction.
``columnar=False`` on the engine keeps the SharedNetwork as the
ablation baseline.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.condition import NumericAtom
from repro.core.plan import numeric_threshold
from repro.solver.linear import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.condition import Atom, EvaluationContext
    from repro.core.plan import CompiledPlan

try:  # feature probe: the container may or may not ship numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via use_numpy=False
    _np = None

HAVE_NUMPY = _np is not None

VECTOR_MIN = 32
"""Candidate-window size below which the scalar loop wins: a numpy
round-trip costs ~10µs of fixed overhead, more than 32 scalar checks."""

_NO_CLAUSE = -1
"""Table sentinel for a clause with no static part (constant-true
static conjunction; truth is the volatile mask alone)."""

# Relation codes of the vectorized satisfied_by replica.  Everything
# that is not LE/LT compares as EQ — including the GE/GT shapes that
# bypassed LinearConstraint.make(), which satisfied_by itself treats as
# EQ via its fallthrough branch.
_REL_LE = 0
_REL_LT = 1
_REL_EQ = 2

_TOL = 1e-9  # LinearConstraint.satisfied_by default tolerance


class SlotInterner:
    """Dense integer ids for hashable keys, with freelist recycling.

    ``intern`` returns ``(slot, is_new)``; ``release`` recycles the slot
    for the next intern.  Capacity (``len(self.keys)``) only grows, so
    parallel per-slot columns can be grown once per fresh slot and
    indexed without bounds checks.
    """

    __slots__ = ("ids", "keys", "free")

    def __init__(self) -> None:
        self.ids: dict = {}
        self.keys: list = []      # slot -> key (None when free)
        self.free: list[int] = []

    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, key) -> bool:
        return key in self.ids

    def get(self, key) -> int | None:
        return self.ids.get(key)

    def intern(self, key) -> tuple[int, bool]:
        slot = self.ids.get(key)
        if slot is not None:
            return slot, False
        if self.free:
            slot = self.free.pop()
            self.keys[slot] = key
        else:
            slot = len(self.keys)
            self.keys.append(key)
        self.ids[key] = slot
        return slot, True

    def release(self, key) -> int:
        slot = self.ids.pop(key)
        self.keys[slot] = None
        self.free.append(slot)
        return slot

    @property
    def capacity(self) -> int:
        return len(self.keys)


@dataclass
class ColumnarStats:
    """Hot-path counters (cheap increments; read by BusStats / A9)."""

    writes: int = 0           # numeric_write invocations
    batches: int = 0          # ingest_batch invocations
    batch_writes: int = 0     # writes applied through ingest_batch
    atoms_flipped: int = 0    # atom truth flips propagated
    clauses_touched: int = 0  # clause counter updates (one per ±1)
    vector_sweeps: int = 0    # candidate windows verified via numpy
    scalar_sweeps: int = 0    # candidate windows verified via the loop

    def describe(self) -> str:
        return (
            f"writes={self.writes} batches={self.batches} "
            f"batch_writes={self.batch_writes} "
            f"atoms_flipped={self.atoms_flipped} "
            f"clauses_touched={self.clauses_touched} "
            f"sweeps={self.vector_sweeps}v/{self.scalar_sweeps}s"
        )


class _VarIndex:
    """Threshold-indexed numeric atoms of one variable (mutable side).

    ``entries`` maps atom slot → ``(threshold, coef, const, bound,
    code)``; ``recheck`` holds slots with no single-threshold structure
    (multi-variable constraints, equalities).  ``guard`` is the largest
    comparison guard seen — like ``_NumericBand`` it never shrinks,
    which can only widen candidate windows (a superset is sound).
    ``snapshot`` caches the sorted parallel arrays and is dropped on any
    mutation.
    """

    __slots__ = ("entries", "recheck", "guard", "snapshot")

    def __init__(self) -> None:
        self.entries: dict[int, tuple[float, float, float, float, int]] = {}
        self.recheck: set[int] = set()
        self.guard = 0.0
        self.snapshot: _VarSnapshot | None = None

    @property
    def empty(self) -> bool:
        return not (self.entries or self.recheck)


class _VarSnapshot:
    """Immutable sorted-column view of one variable's numeric atoms.

    The parallel arrays own their storage (copies, never buffer views),
    so index churn can grow the live columns without invalidating a
    snapshot mid-sweep.
    """

    __slots__ = ("thresholds", "aids", "coefs", "consts", "bounds",
                 "codes", "recheck_aids", "np_arrays")

    def __init__(self, index: _VarIndex, use_numpy: bool) -> None:
        ordered = sorted(
            (entry[0], aid, entry[1], entry[2], entry[3], entry[4])
            for aid, entry in index.entries.items()
        )
        self.thresholds = [row[0] for row in ordered]
        self.aids = [row[1] for row in ordered]
        self.coefs = [row[2] for row in ordered]
        self.consts = [row[3] for row in ordered]
        self.bounds = [row[4] for row in ordered]
        self.codes = [row[5] for row in ordered]
        self.recheck_aids = sorted(index.recheck)
        self.np_arrays = None
        if use_numpy and _np is not None:
            self.np_arrays = (
                _np.array(self.aids, dtype=_np.int64),
                _np.array(self.coefs, dtype=_np.float64),
                _np.array(self.consts, dtype=_np.float64),
                _np.array(self.bounds, dtype=_np.float64),
                _np.array(self.codes, dtype=_np.int8),
            )


class ColumnarState:
    """Array-backed clause/rule truth state for one engine.

    Mirrors the :class:`~repro.core.network.SharedNetwork` contract
    (``subscribe`` / ``unsubscribe`` / ``atom_flipped`` / ``rule_truth``)
    and adds :meth:`numeric_write`, the vectorized replacement for the
    candidate-verify loop of ``engine._propagate_deltas``.
    """

    def __init__(self, *, use_numpy: bool = True,
                 vector_min: int = VECTOR_MIN) -> None:
        self.use_numpy = use_numpy and HAVE_NUMPY
        self.vector_min = vector_min
        self.stats = ColumnarStats()
        # -- atom columns ------------------------------------------------------
        self._atoms = SlotInterner()            # atom key -> aid
        self._atom_truth = bytearray()          # aid -> 0/1
        self._atom_refs: list[int] = []         # aid -> subscribing rules
        self._atom_rows: list[list[int]] = []   # aid -> containing cids
        self._atom_objs: list = []              # aid -> Atom (for recheck)
        # -- clause columns ----------------------------------------------------
        self._clauses = SlotInterner()          # ClauseKey -> cid
        self._clause_false = array("i")         # cid -> false-atom count
        self._clause_refs: list[int] = []       # cid -> table-row refs
        self._clause_subs: list[dict[str, int]] = []  # cid -> rule -> mult
        self._clause_atoms: list[list[int]] = []      # cid -> member aids
        # -- rule tables -------------------------------------------------------
        # rule name -> ((cid | _NO_CLAUSE, volatile_mask), ...)
        self._tables: dict[str, tuple[tuple[int, int], ...]] = {}
        self._rule_atoms: dict[str, list[int]] = {}   # rule -> interned aids
        # -- numeric threshold index -------------------------------------------
        self._num_index: dict[str, _VarIndex] = {}
        # -- cached numpy views over the live columns --------------------------
        # Dropped before any capacity growth: resizing a bytearray or
        # array('i') with a live buffer view raises BufferError.
        self._truth_view = None
        self._false_view = None
        self._csr_cache = None

    def __len__(self) -> int:
        return len(self._clauses)

    # -- view / capacity discipline -------------------------------------------

    def _release_views(self) -> None:
        self._truth_view = None
        self._false_view = None

    def _truth_np(self):
        if self._truth_view is None:
            self._truth_view = _np.frombuffer(self._atom_truth, _np.uint8)
        return self._truth_view

    def _false_np(self):
        if self._false_view is None:
            self._false_view = _np.frombuffer(self._clause_false, _np.intc)
        return self._false_view

    def _csr(self):
        """Atom→clause fan-out as (offsets, flat) int64 arrays."""
        if self._csr_cache is None:
            rows = self._atom_rows
            counts = _np.fromiter(
                (len(row) for row in rows), _np.int64, len(rows)
            )
            offsets = _np.zeros(len(rows) + 1, _np.int64)
            _np.cumsum(counts, out=offsets[1:])
            flat = _np.fromiter(
                (cid for row in rows for cid in row),
                _np.int64, int(offsets[-1]),
            )
            self._csr_cache = (offsets, flat)
        return self._csr_cache

    # -- registration ----------------------------------------------------------

    def subscribe(
        self,
        rule_name: str,
        plan: "CompiledPlan",
        atom_truth: dict[str, bool],
        world: "EvaluationContext",
    ) -> None:
        """Intern the plan's static atoms and clauses, build the rule's
        clause table.  First-seen atoms are evaluated against the world
        once — the same evaluate-at-registration semantics as the
        shared network (``atom_truth`` is accepted for drop-in signature
        compatibility; truth lives in the columns here)."""
        del atom_truth  # truth is columnar state, not an engine dict
        aid_of: dict[str, int] = {}
        rule_aids: list[int] = []
        for _bit, key, atom in plan.static_slots:
            aid, fresh = self._atoms.intern(key)
            if fresh:
                self._grow_atom(aid, atom, bool(atom.evaluate(world)))
            self._atom_refs[aid] += 1
            aid_of[key] = aid
            rule_aids.append(aid)
        table: list[tuple[int, int]] = []
        for static_keys, volatile_mask in plan.clause_parts:
            if not static_keys:
                table.append((_NO_CLAUSE, volatile_mask))
                continue
            cid, fresh = self._clauses.intern(static_keys)
            if fresh:
                member_aids = [aid_of[key] for key in static_keys]
                false_count = sum(
                    1 for aid in member_aids if not self._atom_truth[aid]
                )
                self._grow_clause(cid, member_aids, false_count)
                for aid in member_aids:
                    self._atom_rows[aid].append(cid)
                self._csr_cache = None
            self._clause_refs[cid] += 1
            subs = self._clause_subs[cid]
            subs[rule_name] = subs.get(rule_name, 0) + 1
            table.append((cid, volatile_mask))
        self._tables[rule_name] = tuple(table)
        self._rule_atoms[rule_name] = rule_aids

    def _grow_atom(self, aid: int, atom, truth: bool) -> None:
        if aid == len(self._atom_refs):
            self._release_views()
            self._atom_truth.append(1 if truth else 0)
            self._atom_refs.append(0)
            self._atom_rows.append([])
            self._atom_objs.append(atom)
        else:  # recycled slot: columns already sized
            self._atom_truth[aid] = 1 if truth else 0
            self._atom_refs[aid] = 0
            self._atom_rows[aid] = []
            self._atom_objs[aid] = atom
        self._index_numeric(aid, atom)

    def _grow_clause(self, cid: int, member_aids: list[int],
                     false_count: int) -> None:
        if cid == len(self._clause_refs):
            self._release_views()
            self._clause_false.append(false_count)
            self._clause_refs.append(0)
            self._clause_subs.append({})
            self._clause_atoms.append(member_aids)
        else:
            self._clause_false[cid] = false_count
            self._clause_refs[cid] = 0
            self._clause_subs[cid] = {}
            self._clause_atoms[cid] = member_aids

    def _index_numeric(self, aid: int, atom) -> None:
        if not isinstance(atom, NumericAtom):
            return
        descriptor = numeric_threshold(atom)
        constraint = atom.constraint
        if descriptor is not None:
            variable, _kind, threshold, guard = descriptor
            index = self._num_index.setdefault(variable, _VarIndex())
            relation = constraint.relation
            if relation is Relation.LE:
                code = _REL_LE
            elif relation is Relation.LT:
                code = _REL_LT
            else:  # EQ never reaches here; GE/GT fall through to EQ in
                code = _REL_EQ  # satisfied_by, so replicate that.
            coefficient = constraint.expr.coefficients[0][1]
            index.entries[aid] = (
                threshold, coefficient, constraint.expr.constant,
                constraint.bound, code,
            )
            if guard > index.guard:
                index.guard = guard
            index.snapshot = None
        else:
            for variable in atom.referenced_variables():
                index = self._num_index.setdefault(variable, _VarIndex())
                index.recheck.add(aid)
                index.snapshot = None

    def _unindex_numeric(self, aid: int, atom) -> None:
        if not isinstance(atom, NumericAtom):
            return
        descriptor = numeric_threshold(atom)
        if descriptor is not None:
            variables = (descriptor[0],)
        else:
            variables = tuple(atom.referenced_variables())
        for variable in variables:
            index = self._num_index.get(variable)
            if index is None:
                continue
            index.entries.pop(aid, None)
            index.recheck.discard(aid)
            index.snapshot = None
            if index.empty:
                del self._num_index[variable]

    def unsubscribe(self, rule_name: str) -> None:
        """Drop a rule's table; clauses and atoms with no remaining
        references release their slots back to the interner freelists
        (removal must not leak, nor leave stale state a later
        re-registration could read)."""
        table = self._tables.pop(rule_name, None)
        if table is None:
            return
        for cid, _volatile_mask in table:
            if cid == _NO_CLAUSE:
                continue
            subs = self._clause_subs[cid]
            count = subs.get(rule_name, 0) - 1
            if count > 0:
                subs[rule_name] = count
            else:
                subs.pop(rule_name, None)
            self._clause_refs[cid] -= 1
            if self._clause_refs[cid] == 0:
                for aid in self._clause_atoms[cid]:
                    self._atom_rows[aid].remove(cid)
                self._clause_atoms[cid] = []
                self._clauses.release(self._clauses.keys[cid])
                self._csr_cache = None
        for aid in self._rule_atoms.pop(rule_name, ()):
            self._atom_refs[aid] -= 1
            if self._atom_refs[aid] == 0:
                atom = self._atom_objs[aid]
                self._unindex_numeric(aid, atom)
                self._atom_objs[aid] = None
                self._atoms.release(self._atoms.keys[aid])

    def subscribed(self, rule_name: str) -> bool:
        return rule_name in self._tables

    # -- truth reads -----------------------------------------------------------

    def atom_truth(self, key: str) -> bool | None:
        """Cached truth of an interned atom (introspection/tests)."""
        aid = self._atoms.get(key)
        if aid is None:
            return None
        return bool(self._atom_truth[aid])

    def clause_true(self, static_keys: tuple[str, ...]) -> bool | None:
        cid = self._clauses.get(static_keys)
        if cid is None:
            return None
        return self._clause_false[cid] == 0

    def rule_truth(self, rule_name: str, volatile_bits: int) -> bool:
        """Current truth of a subscribed rule: any clause whose static
        counter sits at zero and whose volatile part is satisfied."""
        false_counts = self._clause_false
        for cid, volatile_mask in self._tables.get(rule_name, ()):
            if cid != _NO_CLAUSE and false_counts[cid]:
                continue
            if (volatile_bits & volatile_mask) == volatile_mask:
                return True
        return False

    # -- delta propagation (scalar entry points) -------------------------------

    def atom_flipped(self, key: str, new_truth: bool) -> Iterable[str]:
        """Record one verified atom truth; returns the rules subscribed
        to clauses whose truth crossed (idempotent: an unchanged truth
        wakes nobody).  The discrete/membership candidate loop and the
        scalar numeric path both land here."""
        aid = self._atoms.get(key)
        if aid is None or bool(self._atom_truth[aid]) == new_truth:
            return ()
        woken: set[str] = set()
        self._flip_atom(aid, new_truth, woken)
        return woken

    def _flip_atom(self, aid: int, new_truth: bool, woken: set[str]) -> None:
        self._atom_truth[aid] = 1 if new_truth else 0
        delta = -1 if new_truth else 1
        false_counts = self._clause_false
        subs = self._clause_subs
        touched = 0
        for cid in self._atom_rows[aid]:
            old = false_counts[cid]
            false_counts[cid] = old + delta
            touched += 1
            if (old == 0) != (old + delta == 0):
                woken.update(subs[cid])
        self.stats.atoms_flipped += 1
        self.stats.clauses_touched += touched

    # -- the vectorized numeric sweep ------------------------------------------

    def numeric_write(self, variable: str, old: float | None, new: float,
                      world: "EvaluationContext") -> set[str]:
        """Apply one numeric write: select the candidate window, verify
        every candidate (vectorized when large enough), flip changed
        atoms into the clause counters and return the woken rules.

        Candidate selection and verification replicate the object path
        exactly — same guard-widened window as ``_NumericBand``, same
        ``satisfied_by`` arithmetic (``coef*value + const`` is one IEEE
        addition in both, and addition of two operands is commutative) —
        so flips are bit-identical to the per-atom ``evaluate`` loop.
        """
        self.stats.writes += 1
        woken: set[str] = set()
        index = self._num_index.get(variable)
        if index is None:
            return woken
        snapshot = index.snapshot
        if snapshot is None:
            snapshot = index.snapshot = _VarSnapshot(index, self.use_numpy)
        # Generic shapes re-evaluate through the atom, like the band's
        # recheck bucket (multi-variable constraints need other values).
        truth = self._atom_truth
        for aid in snapshot.recheck_aids:
            atom_truth = bool(self._atom_objs[aid].evaluate(world))
            if bool(truth[aid]) != atom_truth:
                self._flip_atom(aid, atom_truth, woken)
        thresholds = snapshot.thresholds
        if not thresholds:
            return woken
        # NaN / first-write: compare against every threshold, like the
        # band's full fallback (vector compares with NaN are all-False,
        # matching scalar satisfied_by).
        if old is None or old != old or new != new:
            lo_i, hi_i = 0, len(thresholds)
        else:
            lo, hi = (old, new) if old <= new else (new, old)
            lo_i = bisect_left(thresholds, lo - index.guard)
            hi_i = bisect_right(thresholds, hi + index.guard)
        count = hi_i - lo_i
        if count <= 0:
            return woken
        if snapshot.np_arrays is not None and count >= self.vector_min:
            self.stats.vector_sweeps += 1
            self._vector_window(snapshot, lo_i, hi_i, new, woken)
        else:
            self.stats.scalar_sweeps += 1
            self._scalar_window(snapshot, lo_i, hi_i, new, woken)
        return woken

    def _scalar_window(self, snapshot: _VarSnapshot, lo_i: int, hi_i: int,
                       value: float, woken: set[str]) -> None:
        truth = self._atom_truth
        aids = snapshot.aids
        coefs = snapshot.coefs
        consts = snapshot.consts
        bounds = snapshot.bounds
        codes = snapshot.codes
        for i in range(lo_i, hi_i):
            lhs = consts[i] + coefs[i] * value
            code = codes[i]
            if code == _REL_LE:
                atom_truth = lhs <= bounds[i] + _TOL
            elif code == _REL_LT:
                atom_truth = lhs < bounds[i] - _TOL
            else:
                atom_truth = abs(lhs - bounds[i]) <= _TOL
            aid = aids[i]
            if bool(truth[aid]) != atom_truth:
                self._flip_atom(aid, atom_truth, woken)

    def _vector_window(self, snapshot: _VarSnapshot, lo_i: int, hi_i: int,
                       value: float, woken: set[str]) -> None:
        aids, coefs, consts, bounds, codes = snapshot.np_arrays
        aids = aids[lo_i:hi_i]
        lhs = coefs[lo_i:hi_i] * value + consts[lo_i:hi_i]
        bounds = bounds[lo_i:hi_i]
        codes = codes[lo_i:hi_i]
        new_truth = _np.where(
            codes == _REL_LE, lhs <= bounds + _TOL,
            _np.where(codes == _REL_LT, lhs < bounds - _TOL,
                      _np.abs(lhs - bounds) <= _TOL),
        )
        old_truth = self._truth_np()[aids] != 0
        changed = new_truth != old_truth
        if not changed.any():
            return
        flipped_aids = aids[changed]
        flipped_truth = new_truth[changed]
        self._truth_np()[flipped_aids] = flipped_truth
        self.stats.atoms_flipped += len(flipped_aids)
        offsets, flat = self._csr()
        starts = offsets[flipped_aids]
        counts = offsets[flipped_aids + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return
        # Ragged gather: positions of every (flipped atom, clause) pair.
        base = _np.repeat(starts - _np.concatenate(
            ([0], _np.cumsum(counts)[:-1])), counts)
        positions = base + _np.arange(total, dtype=_np.int64)
        cids = flat[positions]
        deltas = _np.repeat(_np.where(flipped_truth, -1, 1), counts)
        unique_cids, inverse = _np.unique(cids, return_inverse=True)
        summed = _np.bincount(
            inverse, weights=deltas, minlength=len(unique_cids)
        ).astype(_np.intc)
        false_view = self._false_np()
        old_counts = false_view[unique_cids]
        new_counts = old_counts + summed
        false_view[unique_cids] = new_counts
        self.stats.clauses_touched += total
        crossed = (old_counts == 0) != (new_counts == 0)
        if crossed.any():
            subs = self._clause_subs
            for cid in unique_cids[crossed]:
                woken.update(subs[cid])
