"""Rule objects — the executable form of CADEL sentences.

The paper (Sect. 4.1): "a CADEL description is expressed as equivalent a
'rule object'"; the execution module runs these objects rather than
re-interpreting text.  A rule bundles:

* ``condition`` — when to fire (edge-triggered: false→true transition);
* ``action`` — the bound device command;
* ``fallback`` — optional alternative action when the primary loses
  arbitration (Alan: "If it is impossible to use the TV, I want to
  record the game with the video recorder");
* ``until`` — optional postcondition that reverts/stops the action;
* ``owner`` — the user who registered the rule (priorities are defined
  between owners' rules).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.core.action import ActionSpec
from repro.core.condition import Condition
from repro.errors import RuleError

_rule_ids = itertools.count(1)


def next_rule_id() -> int:
    return next(_rule_ids)


@dataclass(slots=True)
class Rule:
    """One registered automation rule.

    Attributes:
        name: unique rule name within the database.
        owner: registering user.
        condition: compiled condition IR.
        action: primary bound command.
        fallback: command to try when arbitration denies the primary.
        until: optional stop condition; when it becomes true while the
            rule is active, ``stop_action`` (or nothing) runs.
        stop_action: command issued when ``until`` triggers.
        source_text: original CADEL sentence (for export and dialogs).
        enabled: disabled rules stay registered but never fire.
        rule_id: stable numeric id (assigned at construction).
    """

    name: str
    owner: str
    condition: Condition
    action: ActionSpec
    fallback: ActionSpec | None = None
    until: Condition | None = None
    stop_action: ActionSpec | None = None
    source_text: str = ""
    enabled: bool = True
    rule_id: int = field(default_factory=next_rule_id)

    def __post_init__(self) -> None:
        if not self.name:
            raise RuleError("rule needs a non-empty name")
        if not self.owner:
            raise RuleError(f"rule {self.name!r} needs an owner")

    def devices(self) -> set[str]:
        """Every device UDN this rule may drive (primary + fallback)."""
        udns = {self.action.device_udn}
        if self.fallback is not None:
            udns.add(self.fallback.device_udn)
        if self.stop_action is not None:
            udns.add(self.stop_action.device_udn)
        return udns

    def describe(self) -> str:
        text = f"[{self.owner}] if {self.condition.describe()}, " \
               f"{self.action.describe()}"
        if self.fallback is not None:
            text += f"; otherwise {self.fallback.describe()}"
        if self.until is not None:
            text += f"; until {self.until.describe()}"
        return text

    def __repr__(self) -> str:
        return f"<Rule {self.name!r} owner={self.owner!r}>"
