"""Compiled condition plans — the incremental-evaluation IR.

A registered condition is compiled **once** into a :class:`CompiledPlan`:
a deduplicated table of atom slots plus DNF clause bitmasks.  Rule truth
then reduces to ``any((bits & mask) == mask for mask in clauses)`` over a
per-rule atom-truth bitset, and the engine only touches the bits that an
ingest actually flipped (driven by the atom-level index in
:mod:`repro.core.database`).

Atoms fall into three behavioural classes:

static
    :class:`NumericAtom`, :class:`DiscreteAtom`, :class:`MembershipAtom`
    — truth is a pure function of stored world variables.  Their truth
    is cached globally (atoms are deduplicated by key across rules) and
    flipped by the database's threshold / value-keyed indexes.
volatile
    :class:`TimeWindowAtom`, :class:`EventAtom` — truth depends on
    ambient context (the clock, the current event set) that changes
    without any ingest.  They are re-evaluated fresh on every truth
    computation; evaluation is cheap arithmetic and the atoms are
    deduplicated, so this stays O(atoms-per-rule).
stateful
    A plan containing a :class:`DurationAtom` is *stateful*: ``held()``
    bookkeeping is a side effect of recursive evaluation order, so such
    plans keep the original tree evaluator to stay bit-exact with the
    seed semantics.  The engine wakes them through the variable-watch
    index instead of atom deltas.
"""

from __future__ import annotations

import sys
from typing import Iterable

from repro.core.condition import (
    Atom,
    Condition,
    DurationAtom,
    EvaluationContext,
    EventAtom,
    FalseAtom,
    NumericAtom,
    TimeWindowAtom,
    TrueAtom,
)
from repro.solver.linear import Relation

VOLATILE_ATOM_TYPES = (TimeWindowAtom, EventAtom)


class CompiledPlan:
    """Flat, immutable evaluation plan for one condition.

    Attributes:
        source_key: the compiled condition's :meth:`Condition.key`.
        atoms: deduplicated atom table; slot ``i`` owns bit ``1 << i``.
        clauses: one bitmask per surviving DNF conjunction, subsumption-
            reduced (a clause implied by a shorter clause is dropped).
        static_slots: ``(bit, atom_key, atom)`` triples for atoms whose
            truth the engine caches and the database indexes.
        volatile_slots: ``(bit, atom)`` pairs re-evaluated fresh on every
            truth computation.
        clause_parts: per surviving clause, ``(static_keys, volatile_mask)``
            — the clause's static conjunction as a *sorted* tuple of atom
            keys (the shared evaluation network's clause-node identity,
            equal across rules with equal conjunctions) plus the bitmask
            of its volatile atoms.  Empty for stateful plans, which never
            join the shared network.
        has_duration: the plan is stateful (see module docstring).
        variables / numeric_variables: cached variable footprints.
    """

    __slots__ = (
        "source_key", "atoms", "clauses", "static_slots", "volatile_slots",
        "clause_parts", "has_duration", "variables", "numeric_variables",
    )

    def __init__(
        self,
        source_key: str,
        atoms: tuple[Atom, ...],
        clauses: tuple[int, ...],
        static_slots: tuple[tuple[int, str, Atom], ...],
        volatile_slots: tuple[tuple[int, Atom], ...],
        clause_parts: tuple[tuple[tuple[str, ...], int], ...],
        has_duration: bool,
        variables: frozenset[str],
        numeric_variables: frozenset[str],
    ) -> None:
        self.source_key = source_key
        self.atoms = atoms
        self.clauses = clauses
        self.static_slots = static_slots
        self.volatile_slots = volatile_slots
        self.clause_parts = clause_parts
        self.has_duration = has_duration
        self.variables = variables
        self.numeric_variables = numeric_variables

    def truth(self, bits: int) -> bool:
        """Condition truth given an atom-truth bitset."""
        for mask in self.clauses:
            if (bits & mask) == mask:
                return True
        return False

    def referenced_variables(self) -> frozenset[str]:
        """Every world variable the compiled condition reads (the cluster
        router derives rule→shard placement from this footprint)."""
        return self.variables

    def volatile_bits(self, ctx: EvaluationContext) -> int:
        bits = 0
        for bit, atom in self.volatile_slots:
            if atom.evaluate(ctx):
                bits |= bit
        return bits

    def __repr__(self) -> str:
        return (
            f"<CompiledPlan atoms={len(self.atoms)} "
            f"clauses={len(self.clauses)} stateful={self.has_duration}>"
        )


def _reduce_clauses(clauses: Iterable[int]) -> tuple[int, ...]:
    """Deduplicate and subsumption-reduce clause masks.

    Clause masks are conjunctions: if ``small ⊆ big`` then ``big`` implies
    ``small`` and can be dropped.  Sorting by popcount makes one pass
    sufficient.
    """
    kept: list[int] = []
    for mask in sorted(set(clauses), key=lambda m: (bin(m).count("1"), m)):
        if any((mask & prior) == prior for prior in kept):
            continue
        kept.append(mask)
    return tuple(kept)


def compile_condition(condition: Condition) -> CompiledPlan:
    """Compile a condition into a :class:`CompiledPlan`.

    ``TrueAtom`` contributes no slot (its bit would always be set) and a
    conjunction containing ``FalseAtom`` is dropped entirely; a plan with
    no surviving clauses is constant-false, a plan containing an empty
    clause mask is constant-true.
    """
    slot_of: dict[str, int] = {}
    atoms: list[Atom] = []
    clauses: list[int] = []
    for conjunction in condition.dnf():
        mask = 0
        dead = False
        for atom in conjunction:
            if isinstance(atom, TrueAtom):
                continue
            if isinstance(atom, FalseAtom):
                dead = True
                break
            # Interned keys make cross-rule dedup (the database's atom
            # table, clause-node identity, the columnar interners) use
            # pointer-equal strings: dict probes hit the identity fast
            # path and duplicated templates share one key object.
            key = sys.intern(atom.key())
            slot = slot_of.get(key)
            if slot is None:
                slot = len(atoms)
                slot_of[key] = slot
                atoms.append(atom)
            mask |= 1 << slot
        if not dead:
            clauses.append(mask)

    static_slots: list[tuple[int, str, Atom]] = []
    volatile_slots: list[tuple[int, Atom]] = []
    has_duration = False
    for slot, atom in enumerate(atoms):
        bit = 1 << slot
        if isinstance(atom, DurationAtom):
            has_duration = True
        elif isinstance(atom, VOLATILE_ATOM_TYPES):
            volatile_slots.append((bit, atom))
        else:
            static_slots.append((bit, sys.intern(atom.key()), atom))

    reduced = _reduce_clauses(clauses)
    clause_parts: tuple[tuple[tuple[str, ...], int], ...] = ()
    if not has_duration:
        volatile_mask_all = 0
        for bit, _atom in volatile_slots:
            volatile_mask_all |= bit
        key_of_bit = {bit: key for bit, key, _atom in static_slots}
        clause_parts = tuple(
            (
                tuple(sorted(
                    key for bit, key in key_of_bit.items() if mask & bit
                )),
                mask & volatile_mask_all,
            )
            for mask in reduced
        )

    return CompiledPlan(
        source_key=condition.key(),
        atoms=tuple(atoms),
        clauses=reduced,
        static_slots=tuple(static_slots),
        volatile_slots=tuple(volatile_slots),
        clause_parts=clause_parts,
        has_duration=has_duration,
        variables=frozenset(
            sys.intern(v) for v in condition.referenced_variables()
        ),
        numeric_variables=frozenset(
            sys.intern(v) for v in condition.numeric_variables()
        ),
    )


def numeric_threshold(
    atom: NumericAtom,
) -> tuple[str, str, float, float] | None:
    """Threshold-index descriptor for a single-variable inequality atom.

    Returns ``(variable, kind, threshold, guard)`` where ``kind`` is
    ``"below"`` when the atom is true for values *below* the threshold
    and ``"above"`` otherwise, and ``guard`` widens the bisect window so
    the comparison tolerance of :meth:`LinearConstraint.satisfied_by`
    can never hide a flip.  Returns ``None`` for atoms that need generic
    rechecking (multi-variable constraints and equalities).
    """
    constraint = atom.constraint
    coefficients = constraint.expr.coefficients
    if len(coefficients) != 1:
        return None
    relation = constraint.relation
    if relation is Relation.EQ:
        return None
    variable, coefficient = coefficients[0]
    if coefficient == 0.0:
        return None
    # make() folds the constant into the bound, but a directly-built
    # constraint may still carry one: coef*v + c REL bound.
    threshold = (constraint.bound - constraint.expr.constant) / coefficient
    guard = 1e-9 / abs(coefficient) + 1e-12
    if relation in (Relation.LE, Relation.LT):
        kind = "below" if coefficient > 0 else "above"
    else:  # GE/GT only appear when a constraint bypassed make()
        kind = "above" if coefficient > 0 else "below"
    return variable, kind, threshold, guard
