"""Satisfiability of condition conjunctions.

This is the registration-time analysis used by both the consistency
check (Sect. 4.4 "whether the condition can hold") and the conflict
check ("whether there is a value satisfying both conditions
simultaneously").  A conjunction is split by atom type and each fragment
is decided with the appropriate engine:

* numeric atoms → :func:`repro.solver.feasible` (Simplex or interval
  propagation);
* discrete atoms → positive/negative contradiction check per variable;
* membership atoms → positive/negative contradiction per (variable,
  member) pair;
* time windows → arc intersection on the day circle plus weekday
  agreement;
* event and duration-marker atoms impose no further static constraint.

A condition is satisfiable iff at least one DNF conjunct is.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.condition import (
    Atom,
    Condition,
    Conjunction,
    DiscreteAtom,
    DurationAtom,
    EventAtom,
    FalseAtom,
    MembershipAtom,
    NumericAtom,
    TimeWindowAtom,
    TrueAtom,
)
from repro.sim.clock import SECONDS_PER_DAY
from repro.solver import feasible
from repro.solver.linear import LinearConstraint


def condition_satisfiable(condition: Condition, *,
                          prefer_intervals: bool = True) -> bool:
    """True iff some world state makes ``condition`` hold."""
    return any(
        conjunction_satisfiable(conjunct, prefer_intervals=prefer_intervals)
        for conjunct in condition.dnf()
    )


def conditions_jointly_satisfiable(
    first: Condition, second: Condition, *, prefer_intervals: bool = True
) -> bool:
    """True iff some single world state makes *both* conditions hold —
    the paper's definition of a potential conflict."""
    for left in first.dnf():
        for right in second.dnf():
            if conjunction_satisfiable(
                left + right, prefer_intervals=prefer_intervals
            ):
                return True
    return False


def conjunction_satisfiable(
    atoms: Conjunction | Sequence[Atom], *, prefer_intervals: bool = True
) -> bool:
    """Decide one conjunction of atoms."""
    numeric: list[LinearConstraint] = []
    positives: dict[str, str] = {}
    negatives: dict[str, set[str]] = {}
    member_pos: set[tuple[str, str]] = set()
    member_neg: set[tuple[str, str]] = set()
    windows: list[TimeWindowAtom] = []

    for atom in atoms:
        if isinstance(atom, FalseAtom):
            return False
        if isinstance(atom, TrueAtom):
            continue
        if isinstance(atom, NumericAtom):
            numeric.append(atom.constraint)
        elif isinstance(atom, DiscreteAtom):
            if atom.negated:
                negatives.setdefault(atom.variable, set()).add(atom.value)
            else:
                existing = positives.get(atom.variable)
                if existing is not None and existing != atom.value:
                    return False  # var == a  and  var == b with a != b
                positives[atom.variable] = atom.value
        elif isinstance(atom, MembershipAtom):
            pair = (atom.variable, atom.member)
            if atom.negated:
                member_neg.add(pair)
            else:
                member_pos.add(pair)
        elif isinstance(atom, TimeWindowAtom):
            windows.append(atom)
        elif isinstance(atom, (EventAtom, DurationAtom)):
            continue  # no additional static constraint
        else:  # pragma: no cover - future atom types must be handled
            raise TypeError(f"unknown atom type: {type(atom).__name__}")

    for variable, value in positives.items():
        if value in negatives.get(variable, ()):
            return False  # var == a  and  var != a
    if member_pos & member_neg:
        return False  # k in S  and  k not in S

    if windows and not _windows_intersect(windows):
        return False

    if numeric and not feasible(numeric, prefer_intervals=prefer_intervals):
        return False
    return True


def _windows_intersect(windows: list[TimeWindowAtom]) -> bool:
    """Do all window atoms admit a common instant?

    Weekday restrictions must agree (an instant has one weekday); the
    time-of-day arcs of every window must share a point.
    """
    weekdays = {w.weekday for w in windows if w.weekday is not None}
    if len(weekdays) > 1:
        return False
    arcs: list[tuple[float, float]] = [(0.0, SECONDS_PER_DAY)]
    for window in windows:
        new_arcs: list[tuple[float, float]] = []
        for lo, hi in arcs:
            for wlo, whi in window.arcs():
                start = max(lo, wlo)
                end = min(hi, whi)
                if start < end:
                    new_arcs.append((start, end))
        if not new_arcs:
            return False
        arcs = new_arcs
    return True
