"""Per-user device access control — the paper's stated future work.

Sect. 6: "we are going to implement in our framework some security
mechanisms, e.g., for limiting access or allowable operations to each
device depending on users' privileges."  This module implements that
extension:

* an :class:`AccessPolicy` holds grants per (user, device) down to the
  granularity of individual actions;
* the home server enforces it twice — at **registration time** (a rule
  whose action the owner may not perform is rejected with a clear
  error, before it ever enters the database) and at **dispatch time**
  (defence in depth: a rule that slipped in, e.g. via import, is still
  stopped at the device boundary).

The default is *open* (everything allowed) so existing deployments are
unaffected until a policy is installed; installing a policy flips the
default to deny-unless-granted for the devices it mentions, while
unmentioned devices stay open — the pragmatic household middle ground.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.rule import Rule
from repro.errors import RuleError


class AccessDeniedError(RuleError):
    """A user tried to register or run an action they may not perform."""

    def __init__(self, user: str, device_name: str, action: str):
        super().__init__(
            f"user {user!r} is not allowed to perform {action!r} "
            f"on device {device_name!r}"
        )
        self.user = user
        self.device_name = device_name
        self.action = action


ALL_ACTIONS = "*"


@dataclass
class Grant:
    """One permission: a user may run some actions on one device."""

    user: str
    device_udn: str
    actions: frozenset[str] = frozenset({ALL_ACTIONS})

    def allows(self, action: str) -> bool:
        return ALL_ACTIONS in self.actions or action in self.actions


class AccessPolicy:
    """Grant table with device-scoped deny-by-default.

    A device becomes *restricted* the moment any grant (or an explicit
    :meth:`restrict`) mentions it; restricted devices deny every
    (user, action) pair without a matching grant.  Unrestricted devices
    allow everyone, preserving the paper's original open behaviour.
    """

    def __init__(self) -> None:
        self._grants: dict[tuple[str, str], set[str]] = {}
        self._restricted: set[str] = set()

    # -- administration --------------------------------------------------------

    def restrict(self, device_udn: str) -> None:
        """Put a device under deny-by-default without granting anyone."""
        self._restricted.add(device_udn)

    def grant(self, user: str, device_udn: str,
              actions: set[str] | None = None) -> None:
        """Allow ``user`` the given actions (default: all) on a device;
        the device becomes restricted for everyone else."""
        allowed = set(actions) if actions else {ALL_ACTIONS}
        self._grants.setdefault((user, device_udn), set()).update(allowed)
        self._restricted.add(device_udn)

    def revoke(self, user: str, device_udn: str) -> None:
        """Remove every grant the user holds on a device (the device
        stays restricted)."""
        self._grants.pop((user, device_udn), None)

    def is_restricted(self, device_udn: str) -> bool:
        return device_udn in self._restricted

    # -- decisions ----------------------------------------------------------------

    def allowed(self, user: str, device_udn: str, action: str) -> bool:
        if device_udn not in self._restricted:
            return True
        actions = self._grants.get((user, device_udn))
        if actions is None:
            return False
        return ALL_ACTIONS in actions or action in actions

    def check(self, user: str, device_udn: str, device_name: str,
              action: str) -> None:
        if not self.allowed(user, device_udn, action):
            raise AccessDeniedError(user, device_name, action)

    def check_rule(self, rule: Rule) -> None:
        """Registration-time check: every action a rule could ever issue
        (primary, fallback, stop) must be permitted to its owner."""
        for spec in (rule.action, rule.fallback, rule.stop_action):
            if spec is not None:
                self.check(rule.owner, spec.device_udn, spec.device_name,
                           spec.action_name)

    def grants_for(self, user: str) -> list[Grant]:
        """The user's current grants (for the privileges dialog)."""
        return [
            Grant(user=user, device_udn=device, actions=frozenset(actions))
            for (grant_user, device), actions in sorted(self._grants.items())
            if grant_user == user
        ]
