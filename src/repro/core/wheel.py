"""Time-window wheel — a boundary schedule for clock-driven rules.

The per-tick path re-evaluates *every* rule whose condition (or
``until``) reads the clock pseudo-variable, every tick: O(clock rules)
per minute even when nothing crosses a window boundary.  A window
atom's truth, however, only changes at a handful of known times of day
— its start, its end, and (for weekday-restricted windows) midnight.

The wheel keeps one upcoming boundary per *distinct* window atom in a
min-heap.  ``advance(now)`` pops every boundary that a tick has passed,
wakes the subscribed rules, and reschedules each popped atom's next
boundary — O(crossings) per tick, ~flat in the window-rule population.

Semantics match the per-tick path exactly because rules are still only
*evaluated* at tick times (the engine calls :meth:`TimeWheel.advance`
from ``clock_tick``): a boundary mid-tick is observed at the same next
tick either way, and several crossings inside one tick gap collapse to
the same single evaluation both ways.  Spurious wakes (a weekday atom's
midnight candidate on the wrong day, a degenerate full-day window's
anchor) cost one no-op evaluation and never change observable behaviour
— the per-tick path evaluates those rules every tick anyway.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.core.condition import TimeWindowAtom
from repro.sim.clock import SECONDS_PER_DAY


def next_boundary(atom: TimeWindowAtom, now: float) -> float:
    """The earliest absolute time strictly after ``now`` at which the
    atom's truth can change.

    Candidate times of day are the window's start and end (``end`` may
    be stored as 86400; truth flips at time-of-day 0) plus midnight for
    weekday-restricted windows, whose truth also changes when the day
    rolls over.  Strictness matters: a rule registered or woken exactly
    on a boundary has already observed it, so the atom re-arms for the
    next occurrence.
    """
    time_of_day = now % SECONDS_PER_DAY
    candidates = {atom.start % SECONDS_PER_DAY, atom.end % SECONDS_PER_DAY}
    if atom.weekday is not None:
        candidates.add(0.0)
    best = SECONDS_PER_DAY
    for candidate in candidates:
        delta = candidate - time_of_day
        if delta <= 0.0:
            delta += SECONDS_PER_DAY
        if delta < best:
            best = delta
    return now + best


class TimeWheel:
    """Boundary schedule over deduplicated window atoms.

    Atoms are keyed by :meth:`~repro.core.condition.TimeWindowAtom.key`,
    so a window shared by many rules is scheduled once.  Removal uses
    lazy heap deletion: an unsubscribed (or rescheduled) atom's old heap
    entry is recognised by comparing against the authoritative
    ``_next`` slot and skipped.
    """

    __slots__ = ("_heap", "_subs", "_atoms", "_next", "armed_total")

    def __init__(self) -> None:
        self._heap: list[tuple[float, str]] = []
        self._subs: dict[str, set[str]] = {}        # atom key -> rule names
        self._atoms: dict[str, TimeWindowAtom] = {}
        self._next: dict[str, float] = {}           # atom key -> armed time
        self.armed_total = 0    # boundaries ever armed (subscribe + re-arm)

    def __len__(self) -> int:
        """Distinct window atoms currently scheduled."""
        return len(self._atoms)

    def subscribe(
        self, rule_name: str, atoms: Iterable[TimeWindowAtom], now: float
    ) -> tuple[str, ...]:
        """Register a rule's window atoms; returns the atom keys so the
        caller can unsubscribe them on rule removal."""
        keys: list[str] = []
        for atom in atoms:
            key = atom.key()
            keys.append(key)
            subscribers = self._subs.get(key)
            if subscribers is not None:
                subscribers.add(rule_name)
                continue
            self._subs[key] = {rule_name}
            self._atoms[key] = atom
            when = next_boundary(atom, now)
            self._next[key] = when
            heapq.heappush(self._heap, (when, key))
            self.armed_total += 1
        return tuple(keys)

    def unsubscribe(self, rule_name: str, keys: Iterable[str]) -> None:
        for key in keys:
            subscribers = self._subs.get(key)
            if subscribers is None:
                continue
            subscribers.discard(rule_name)
            if not subscribers:
                del self._subs[key]
                del self._atoms[key]
                self._next.pop(key, None)  # heap entry left to lazy-skip

    def advance(self, now: float) -> set[str]:
        """Pop every boundary at or before ``now``; returns the rules to
        wake, with each popped atom re-armed for its next crossing
        strictly after ``now``."""
        woken: set[str] = set()
        heap = self._heap
        while heap and heap[0][0] <= now:
            when, key = heapq.heappop(heap)
            if self._next.get(key) != when:
                continue  # stale: atom removed or already re-armed
            woken |= self._subs[key]
            upcoming = next_boundary(self._atoms[key], now)
            self._next[key] = upcoming
            heapq.heappush(heap, (upcoming, key))
            self.armed_total += 1
        return woken

    def schedule(self) -> dict[str, float]:
        """Authoritative armed-boundary map (atom key -> absolute time);
        snapshotted by the durability plane."""
        return dict(self._next)

    def restore_schedule(
        self, schedule: dict[str, float], armed_total: int | None = None
    ) -> None:
        """Overlay a snapshotted boundary map onto a freshly re-subscribed
        wheel.

        Re-subscription at restore time arms each atom's next boundary
        *strictly after* the snapshot instant — which silently skips a
        boundary lying between the last pre-crash tick and the snapshot.
        Overwriting ``_next`` with the snapshotted times (old heap
        entries fall to lazy deletion) makes the first post-restore tick
        observe exactly the crossings the uninterrupted run would have.
        Keys absent from the current wheel (rules not re-registered) are
        ignored.
        """
        for key, when in schedule.items():
            if key not in self._next or self._next[key] == when:
                continue
            self._next[key] = when
            heapq.heappush(self._heap, (when, key))
        if armed_total is not None:
            self.armed_total = armed_total

    def peek(self) -> float | None:
        """The earliest armed boundary (None when nothing is scheduled);
        introspection for tests and schedulers."""
        heap = self._heap
        while heap and self._next.get(heap[0][1]) != heap[0][0]:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
