"""Consistent-hash routing of home-prefixed identifiers onto shards.

The canonical variable naming scheme
(:func:`repro.core.server.variable_id`, ``"<udn>:<service_id>:<variable>"``)
already carries a device prefix; multi-home deployments extend it with a
home segment — ``"home-0007/thermo:svc:temperature"`` — so one string
names both the home and the sensor.  The router hashes the *home key*
(by default everything before the first ``/`` of the first ``:``
segment) onto a ring of shard points, guaranteeing that every variable
and device of one home lands on the same shard no matter how many
shards exist.

Consistent hashing (each shard owns many virtual points on a ring)
keeps the home→shard map stable when the shard count changes: growing
from N to N+1 shards moves only ~1/(N+1) of the homes, which is what a
production resharding wants.  The hash is :mod:`hashlib`-based, so
routing is stable across processes and ``PYTHONHASHSEED`` values —
a replayed event log routes identically on every run.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Callable, Iterable

from repro.errors import RuleError

AMBIENT_PREFIXES = frozenset({"clock", "event"})
"""Pseudo-variable prefixes with no home identity (the simulated clock
and instantaneous events); they never constrain rule placement."""


def home_key(identifier: str) -> str:
    """Extract the home/zone key from a variable id or device UDN.

    ``"home-0007/thermo:svc:temperature"`` → ``"home-0007"``;
    ``"home-0007/aircon"`` → ``"home-0007"``; ids without a home segment
    fall back to their leading UDN token (``"thermo:t:temp"`` →
    ``"thermo"``), which still routes deterministically.
    """
    return identifier.split(":", 1)[0].split("/", 1)[0]


def stable_hash(text: str) -> int:
    """64-bit process-independent hash (ring positions, key lookup)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Maps home keys onto ``shard_count`` shards via a hash ring.

    Args:
        shard_count: number of shards (≥ 1).
        replicas: virtual points per shard; more points smooth the
            per-shard load at the cost of a larger (static) ring.
        key_of: identifier → home-key extractor, replaceable for naming
            schemes the default cannot parse.
    """

    def __init__(
        self,
        shard_count: int,
        *,
        replicas: int = 128,
        key_of: Callable[[str], str] = home_key,
    ) -> None:
        if shard_count < 1:
            raise RuleError(f"shard_count must be >= 1: {shard_count}")
        if replicas < 1:
            raise RuleError(f"replicas must be >= 1: {replicas}")
        self.shard_count = shard_count
        self.key_of = key_of
        points = sorted(
            (stable_hash(f"shard-{shard}#{replica}"), shard)
            for shard in range(shard_count)
            for replica in range(replicas)
        )
        self._ring_positions = [position for position, _ in points]
        self._ring_shards = [shard for _, shard in points]

    # -- routing ---------------------------------------------------------------

    def shard_of_key(self, key: str) -> int:
        """Shard owning a home key (first ring point at or after its hash)."""
        index = bisect_right(self._ring_positions, stable_hash(key))
        if index == len(self._ring_positions):
            index = 0  # wrap around the ring
        return self._ring_shards[index]

    def shard_of(self, identifier: str) -> int:
        """Shard owning a variable id / device UDN (via its home key)."""
        return self.shard_of_key(self.key_of(identifier))

    # -- rule placement --------------------------------------------------------

    def placement_key(
        self,
        variables: Iterable[str],
        devices: Iterable[str],
        *,
        rule_name: str = "",
    ) -> str:
        """The single home key a rule belongs to.

        A rule lands on the shard owning its condition/until variables
        and its action devices (the footprint the compiled plan reports
        via :meth:`~repro.core.plan.CompiledPlan.referenced_variables`).
        Ambient pseudo-variables (clock, events) carry no home identity
        and are ignored.  A rule whose footprint spans more than one
        home key cannot be arbitrated by any single shard and is
        rejected — cross-shard rule placement is a recorded ROADMAP
        follow-on, not a silent wrong answer.
        """
        keys = {
            key
            for key in (self.key_of(variable) for variable in variables)
            if key not in AMBIENT_PREFIXES
        }
        keys.update(self.key_of(udn) for udn in devices)
        if len(keys) > 1:
            label = f"rule {rule_name!r}" if rule_name else "rule"
            raise RuleError(
                f"{label} spans multiple homes ({', '.join(sorted(keys))}); "
                "rules must reference variables and devices of a single "
                "home key to be placed on one shard"
            )
        if not keys:
            label = f"rule {rule_name!r}" if rule_name else "rule"
            raise RuleError(
                f"{label} references no home-keyed variable or device; "
                "cannot derive a shard placement"
            )
        return keys.pop()

    def describe(self) -> str:
        return (
            f"ShardRouter({self.shard_count} shards, "
            f"{len(self._ring_positions)} ring points)"
        )
