"""Out-of-process shards: the worker process and its parent-side proxy.

The thread-backed cluster is bounded by the GIL — N
:class:`~repro.cluster.shard.EngineShard`\\ s drain on one interpreter,
so A6's "linear scaling" is time-sliced, not parallel.  This module
moves each shard into its own worker process behind the framed wire
protocol of :mod:`repro.cluster.wire`:

:class:`ShardClient` (parent side)
    Implements the shard surface over a blocking ``socketpair``, so the
    :class:`~repro.cluster.bus.IngestBus`,
    :class:`~repro.cluster.server.ClusterServer` and
    :class:`~repro.cluster.durability.DurabilityPlane` route to local
    and remote shards uniformly — ``backend="process"`` is the only
    difference an application sees.  Ingest batches, events and WAL
    records are **one-way** frames: the client pipelines them without
    waiting, and the stream's FIFO order guarantees any later call
    (query, registration barrier, snapshot) observes their effects.
    Batch counter deltas accumulate worker-side and fold back through
    :meth:`ShardClient.barrier`.

:class:`WorkerHost` (worker side)
    An asyncio loop hosting one ``EngineShard`` on a **private
    simulator**.  The clock handshake: HELLO carries the parent
    simulator's ``now`` (the tick-grid anchor), and every subsequent
    time-bearing frame carries the parent's ``now`` again; the worker
    :meth:`~repro.sim.events.Simulator.catch_up`\\ s before applying, so
    grid-snapped adaptive ticks and held-duration timers fire in the
    same order the shared-simulator drain produces.  Ties at exactly
    the drain time resolve as in WAL replay (timers first) — the same
    known limitation documented in :mod:`repro.cluster.durability`,
    avoided the same way (fractional ingest timestamps).

    The worker owns its shard's WAL writer and snapshot serialization
    (:meth:`EngineShard.wal_append` / :meth:`EngineShard.snapshot_to`),
    so durability I/O parallelizes across cores with the drains.

Deadlock discipline: the worker writes replies and forwarded actions
with buffered ``write()`` and only ``drain()``\\ s after a RESULT/ERROR
frame — at which point the parent is guaranteed to be reading.  Action
frames ride in front of the next reply; the parent dispatches them
while awaiting it (and during shutdown's trailing drain).

Failures stay typed: worker-side exceptions travel back pickled
(the taxonomy in :mod:`repro.errors` pins the round-trip) and a dead
worker surfaces as :class:`~repro.errors.WorkerCrashed` with the
process exit code.  Crash-point injection
(:class:`~repro.sim.faults.FaultInjector`) is **not** supported on the
process backend — a real ``kill -9`` does the same job with no
cross-process plumbing.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import socket
import traceback
from collections import deque
from typing import Any, Callable, Collection

from repro.cluster import wire
from repro.cluster.shard import EngineShard
from repro.core.engine import RuleState
from repro.errors import RecoveryError, WireError, WorkerCrashed, WorkerError
from repro.sim.events import Simulator

#: Seconds the parent waits for the worker's HELLO_ACK.
HANDSHAKE_TIMEOUT = 30.0
#: Seconds granted at each escalation step of ShardClient.shutdown
#: (drain, join) before moving on to terminate then kill.
SHUTDOWN_GRACE = 5.0

_RECV_CHUNK = 1 << 16


# -- worker side ---------------------------------------------------------------


def _worker_main(child_sock, parent_sock, shard_id: int) -> None:
    """Process entry point (module-level so the spawn start method can
    pickle it).  ``parent_sock`` is the parent's end, inherited across
    fork — closed immediately so the parent closing its copy reads as
    EOF here instead of wedging the worker forever."""
    try:
        parent_sock.close()
    except OSError:
        pass
    try:
        asyncio.run(_serve(child_sock, shard_id))
    except (WireError, ConnectionError, EOFError):
        # A torn handshake or mid-frame disconnect means the parent is
        # gone or broken; there is nobody left to report to.
        pass
    finally:
        try:
            child_sock.close()
        except OSError:
            pass


async def _serve(sock, shard_id: int) -> None:
    sock.setblocking(False)
    if sock.family == getattr(socket, "AF_UNIX", object()):
        reader, writer = await asyncio.open_unix_connection(sock=sock)
    else:
        reader, writer = await asyncio.open_connection(sock=sock)
    try:
        header = await reader.readexactly(wire.HEADER_SIZE)
        length, frame_type = wire.decode_header(header)
        payload = await reader.readexactly(length)
        if frame_type != wire.HELLO:
            raise WireError(
                f"expected HELLO as the first frame, got "
                f"{wire.FRAME_NAMES[frame_type]}"
            )
        host = WorkerHost(shard_id, reader, writer, wire.decode_pickled(payload))
        await host.run()
    finally:
        writer.close()


class WorkerHost:
    """One shard's engine + clock + WAL, served over the wire."""

    def __init__(self, shard_id: int, reader, writer, hello: dict) -> None:
        self.shard_id = shard_id
        self.reader = reader
        self.writer = writer
        self.simulator = Simulator()
        # The parent's now at spawn becomes this shard's tick-grid
        # anchor — the same anchor an in-thread shard built at cluster
        # construction records.
        self.simulator.catch_up(hello["t0"])
        self.decoder = wire.WireDecoder()
        self._flips = 0
        self._touched = 0
        config = dict(hello["config"])
        telemetry = None
        if config.pop("telemetry", False):
            from repro.obs.trace import Telemetry
            telemetry = Telemetry(
                shard=shard_id, clock=lambda: self.simulator.now)
        dispatch = self._forward_action if hello["has_dispatch"] else None
        self.shard = EngineShard(
            shard_id, self.simulator, dispatch=dispatch,
            telemetry=telemetry, **config,
        )

    def _forward_action(self, spec) -> None:
        # Buffered, never drained here: flushed when the loop next
        # yields; the parent reads these while awaiting its next reply.
        self.writer.write(
            wire.encode_frame(wire.ACTION, wire.encode_pickled(spec)))

    async def run(self) -> None:
        self.writer.write(wire.encode_frame(
            wire.HELLO_ACK,
            json.dumps([self.shard_id, os.getpid()]).encode("utf-8"),
        ))
        await self.writer.drain()
        reader = self.reader
        while True:
            try:
                header = await reader.readexactly(wire.HEADER_SIZE)
                length, frame_type = wire.decode_header(header)
                payload = (
                    await reader.readexactly(length) if length else b""
                )
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # parent went away without BYE; exit quietly
            if frame_type == wire.BATCH:
                t, writes = self.decoder.decode_batch(payload)
                self.simulator.catch_up(t)
                if len(writes) == 1:
                    # Mirrors the bus's _flush_run split: singletons take
                    # the plain ingest path and stay out of the batch
                    # counters.
                    self.shard.ingest(*writes[0])
                else:
                    flips, touched = self.shard.ingest_batch(writes)
                    self._flips += flips
                    self._touched += touched
            elif frame_type == wire.EVENT:
                t, event_type, subject, only = \
                    self.decoder.decode_event(payload)
                self.simulator.catch_up(t)
                self.shard.post_event(event_type, subject, only=only)
            elif frame_type == wire.WAL:
                self.shard.wal_append(payload)
            elif frame_type == wire.CALL:
                req_id, method, t, args = wire.decode_call(payload)
                await self._handle_call(req_id, method, t, args, {},
                                        pickled=False)
            elif frame_type == wire.CALL_P:
                req_id, method, t, args, kwargs = \
                    wire.decode_pickled(payload)
                await self._handle_call(req_id, method, t, args, kwargs,
                                        pickled=True)
            elif frame_type == wire.BYE:
                self.shard.shutdown()  # closes the WAL too
                return
            else:
                raise WireError(
                    f"worker cannot handle "
                    f"{wire.FRAME_NAMES[frame_type]} frames"
                )

    async def _handle_call(
        self, req_id: int, method: str, t: float,
        args: list, kwargs: dict, *, pickled: bool,
    ) -> None:
        try:
            self.simulator.catch_up(t)
            handler = getattr(self, "_call_" + method, None)
            if handler is None or method.startswith("_"):
                raise WorkerError(f"unknown shard method {method!r}")
            result = handler(*args, **kwargs)
        except Exception as exc:
            self.writer.write(
                wire.encode_error(req_id, exc, traceback.format_exc()))
        else:
            self.writer.write(
                wire.encode_result_pickled(req_id, result) if pickled
                else wire.encode_result(req_id, result)
            )
        # The parent is now blocked awaiting this reply, so draining
        # here cannot deadlock — and it flushes any buffered ACTIONs.
        await self.writer.drain()

    # -- JSON-called handlers --------------------------------------------------

    def _call_barrier(self):
        deltas = [self._flips, self._touched]
        self._flips = 0
        self._touched = 0
        return deltas

    def _call_coalesce_safe(self, variable):
        return self.shard.coalesce_safe(variable)

    def _call_adopt_mirrors(self, rule_name, variables):
        return self.shard.adopt_mirrors(rule_name, variables)

    def _call_release_mirrors(self, rule_name):
        return self.shard.release_mirrors(rule_name)

    def _call_mirrors_of_rule(self, rule_name):
        return sorted(self.shard.mirrors_of_rule(rule_name))

    def _call_mirror_variables(self):
        return sorted(self.shard.mirror_variables())

    def _call_rule_truth(self, name):
        return self.shard.rule_truth(name)

    def _call_rule_state(self, name):
        return self.shard.rule_state(name).value

    def _call_rule_count(self):
        return self.shard.rule_count()

    def _call_telemetry_snapshot(self, queue_depth):
        return self.shard.telemetry_snapshot(queue_depth=queue_depth)

    def _call_set_recovery_hooks(self, disarmed):
        self.shard.set_recovery_hooks(disarmed)

    def _call_wal_open(self, path, fsync_interval):
        self.shard.wal_open(path, fsync_interval=fsync_interval)

    def _call_wal_sync(self):
        self.shard.wal_sync()

    def _call_wal_close(self):
        self.shard.wal_close()

    def _call_snapshot_to(self, path):
        return self.shard.snapshot_to(path)

    # -- pickle-called handlers ------------------------------------------------

    def _call_register_rule(self, rule, validate=True):
        reports = self.shard.register_rule(rule, validate=validate)
        return reports, self.shard.epoch

    def _call_remove_rule(self, name):
        rule = self.shard.remove_rule(name)
        return rule, self.shard.epoch

    def _call_add_priority_order(self, order):
        return self.shard.add_priority_order(order)

    def _call_conflict_log(self):
        return list(self.shard.conflict_log)

    def _call_holder_of(self, udn):
        return self.shard.holder_of(udn)

    def _call_variable_value(self, variable):
        return self.shard.variable_value(variable)

    def _call_trace(self):
        return self.shard.trace()

    def _call_snapshot_state(self):
        return self.shard.snapshot_state()

    def _call_restore_world(self, state):
        self.shard.restore_world(state)

    def _call_recover(self, state):
        self.shard.recover(state)
        return self.shard.epoch


# -- parent side ---------------------------------------------------------------


class ShardClient:
    """The shard surface, proxied to one worker process.

    Construction spawns the worker (``fork`` where available, else
    ``spawn``), ships the engine configuration in a pickled HELLO and
    blocks for the HELLO_ACK.  The proxy is synchronous and single-
    threaded like the in-thread shard it replaces; it is not safe for
    concurrent use from multiple threads.
    """

    backend = "process"
    #: The bus's telemetry duck-check reads this: span recording happens
    #: worker-side, surfaced through telemetry_snapshot().
    telemetry = None

    def __init__(
        self,
        shard_id: int,
        simulator: Simulator,
        *,
        config: dict,
        dispatch: Callable | None = None,
        handshake_timeout: float = HANDSHAKE_TIMEOUT,
    ) -> None:
        self.shard_id = shard_id
        self.simulator = simulator
        self.dispatch = dispatch
        self.epoch = 0
        self.worker_pid: int | None = None
        self._encoder = wire.WireEncoder()
        self._frames = wire.FrameReader()
        self._pending: deque[tuple[int, bytes]] = deque()
        self._next_req = 0
        self._closed = False
        try:
            hello = wire.encode_pickled({
                "t0": simulator.now,
                "config": dict(config),
                "has_dispatch": dispatch is not None,
            })
        except Exception as exc:
            raise WorkerError(
                f"cluster config for shard {shard_id} is not picklable "
                f"(the process backend ships it to the worker): {exc}"
            ) from exc
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        parent_sock, child_sock = socket.socketpair()
        self._sock = parent_sock
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_sock, parent_sock, shard_id),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        try:
            self.process.start()
            child_sock.close()
            self._sock.settimeout(handshake_timeout)
            self._sock.sendall(wire.encode_frame(wire.HELLO, hello))
            frame_type, payload = self._recv_frame()
            if frame_type != wire.HELLO_ACK:
                raise WireError(
                    f"expected HELLO_ACK, got "
                    f"{wire.FRAME_NAMES[frame_type]}"
                )
            acked_id, self.worker_pid = json.loads(payload)
            if acked_id != shard_id:
                raise WireError(
                    f"worker acknowledged shard {acked_id}, "
                    f"expected {shard_id}"
                )
            self._sock.settimeout(None)
        except BaseException:
            self._closed = True
            self._sock.close()
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(1.0)
            raise

    # -- transport -------------------------------------------------------------

    def _crashed(self, detail: str) -> WorkerCrashed:
        self._closed = True
        self.process.join(0.5)
        return WorkerCrashed(self.shard_id, self.process.exitcode, detail)

    def _send(self, data: bytes) -> None:
        if self._closed:
            raise WorkerError(
                f"shard {self.shard_id} client used after shutdown")
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise self._crashed(f"send failed: {exc}") from exc

    def _recv_frame(self) -> tuple[int, bytes]:
        while True:
            if self._pending:
                return self._pending.popleft()
            self._pending.extend(self._frames.frames())
            if self._pending:
                continue
            try:
                data = self._sock.recv(_RECV_CHUNK)
            except socket.timeout as exc:
                raise WorkerError(
                    f"shard {self.shard_id} worker did not reply within "
                    f"the deadline"
                ) from exc
            except OSError as exc:
                raise self._crashed(f"receive failed: {exc}") from exc
            if not data:
                raise self._crashed("connection closed")
            self._frames.feed(data)

    def _await(self, req_id: int) -> Any:
        while True:
            frame_type, payload = self._recv_frame()
            if frame_type == wire.ACTION:
                spec = wire.decode_pickled(payload)
                if self.dispatch is not None:
                    self.dispatch(spec)
                continue
            if frame_type == wire.RESULT:
                got, value = wire.decode_result(payload)
            elif frame_type == wire.RESULT_P:
                got, value = wire.decode_pickled(payload)
            elif frame_type == wire.ERROR:
                got, exc, tb_text = wire.decode_pickled(payload)
                if got != req_id:
                    raise WireError(
                        f"error reply for request {got}, expected {req_id}")
                try:
                    exc.worker_traceback = tb_text
                except Exception:
                    pass
                raise exc
            else:
                raise WireError(
                    f"unexpected {wire.FRAME_NAMES[frame_type]} frame "
                    "from worker"
                )
            if got != req_id:
                raise WireError(
                    f"reply for request {got}, expected {req_id}")
            return value

    def _call(self, method: str, *args) -> Any:
        req_id = self._next_req
        self._next_req += 1
        self._send(wire.encode_call(
            req_id, method, self.simulator.now, args))
        return self._await(req_id)

    def _call_p(self, method: str, *args, **kwargs) -> Any:
        req_id = self._next_req
        self._next_req += 1
        self._send(wire.encode_call_pickled(
            req_id, method, self.simulator.now, args, kwargs))
        return self._await(req_id)

    # -- rule lifecycle --------------------------------------------------------

    def register_rule(self, rule, *, validate: bool = True):
        reports, self.epoch = self._call_p(
            "register_rule", rule, validate=validate)
        return reports

    def remove_rule(self, name: str):
        rule, self.epoch = self._call_p("remove_rule", name)
        return rule

    def add_priority_order(self, order):
        return self._call_p("add_priority_order", order)

    @property
    def conflict_log(self):
        return self._call_p("conflict_log")

    def rule_count(self) -> int:
        return self._call("rule_count")

    # -- engine reads ----------------------------------------------------------

    def rule_truth(self, name: str) -> bool:
        return self._call("rule_truth", name)

    def rule_state(self, name: str) -> RuleState:
        return RuleState(self._call("rule_state", name))

    def holder_of(self, udn: str):
        return self._call_p("holder_of", udn)

    def trace(self) -> list:
        return self._call_p("trace")

    # -- world-state feeds (one-way, pipelined) --------------------------------

    def ingest(self, variable: str, value: Any) -> None:
        self._send(self._encoder.encode_batch(
            self.simulator.now, ((variable, value),)))

    def ingest_batch(self, writes) -> tuple[int, int]:
        self._send(self._encoder.encode_batch(self.simulator.now, writes))
        return (0, 0)  # worker-side counters fold back through barrier()

    def post_event(
        self, event_type: str, subject: str | None = None,
        *, only: Collection[str] | None = None,
    ) -> None:
        # Membership is materialized at send time — the same moment the
        # drain applies (and the WAL logs) it on the thread backend.
        self._send(self._encoder.encode_event(
            self.simulator.now, event_type, subject,
            sorted(only) if only is not None else None,
        ))

    def barrier(self) -> tuple[int, int]:
        flips, touched = self._call("barrier")
        return (flips, touched)

    def coalesce_safe(self, variable: str) -> bool:
        return self._call("coalesce_safe", variable)

    # -- mirror hosting --------------------------------------------------------

    def adopt_mirrors(self, rule_name: str,
                      variables: Collection[str]) -> list[str]:
        return self._call("adopt_mirrors", rule_name, sorted(variables))

    def release_mirrors(self, rule_name: str) -> list[str]:
        return self._call("release_mirrors", rule_name)

    def mirrors_of_rule(self, rule_name: str) -> frozenset[str]:
        return frozenset(self._call("mirrors_of_rule", rule_name))

    def mirror_variables(self) -> frozenset[str]:
        return frozenset(self._call("mirror_variables"))

    def variable_value(self, variable: str) -> Any:
        return self._call_p("variable_value", variable)

    # -- telemetry -------------------------------------------------------------

    def telemetry_snapshot(self, *, queue_depth: int | None = None):
        return self._call("telemetry_snapshot", queue_depth)

    # -- durability ------------------------------------------------------------

    def snapshot_state(self) -> dict:
        return self._call_p("snapshot_state")

    def restore_world(self, state: dict) -> None:
        self._call_p("restore_world", state)

    def set_recovery_hooks(self, disarmed: bool) -> None:
        self._call("set_recovery_hooks", disarmed)

    def recover(self, state: dict) -> None:
        self.epoch = self._call_p("recover", state)

    def wal_open(self, path: str, *, fsync_interval: int = 16,
                 faults=None) -> None:
        if faults is not None:
            raise RecoveryError(
                "crash-point injection is not supported on the process "
                "backend; use kill() on the worker instead"
            )
        self._call("wal_open", path, fsync_interval)

    def wal_append(self, frame: bytes) -> int:
        self._send(wire.encode_frame(wire.WAL, frame))
        return len(frame)

    def wal_sync(self) -> None:
        self._call("wal_sync")

    def wal_close(self) -> None:
        if not self._closed:
            self._call("wal_close")

    def wal_arm_faults(self, faults) -> None:
        if faults is not None:
            raise RecoveryError(
                "crash-point injection is not supported on the process "
                "backend"
            )

    def snapshot_to(self, path: str) -> dict:
        return self._call("snapshot_to", path)

    # -- lifecycle -------------------------------------------------------------

    def kill(self) -> None:
        """SIGKILL the worker mid-conversation (crash testing)."""
        if self.process.is_alive():
            self.process.kill()
            self.process.join(SHUTDOWN_GRACE)

    def shutdown(self) -> None:
        """Stop the worker and reap the process.  Idempotent.

        Escalation: BYE + drain trailing action frames until EOF, join
        with a deadline, then terminate, then kill — a wedged or dead
        worker never leaks a child process."""
        already_closed = self._closed
        self._closed = True
        if not already_closed:
            try:
                self._sock.sendall(wire.encode_frame(wire.BYE))
                self._sock.settimeout(SHUTDOWN_GRACE)
                while True:
                    frame_type, payload = self._recv_frame()
                    if frame_type == wire.ACTION \
                            and self.dispatch is not None:
                        self.dispatch(wire.decode_pickled(payload))
            except (WorkerError, WireError, OSError):
                pass  # crashed, wedged or already gone; escalate below
        try:
            self._sock.close()
        except OSError:
            pass
        self.process.join(SHUTDOWN_GRACE)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(1.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(1.0)


__all__ = ["HANDSHAKE_TIMEOUT", "SHUTDOWN_GRACE", "ShardClient",
           "WorkerHost"]
