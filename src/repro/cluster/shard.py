"""One shard: an independent rule engine serving a subset of homes.

An :class:`EngineShard` owns a full vertical slice of the single-home
framework — :class:`~repro.core.database.RuleDatabase`,
:class:`~repro.core.priority.PriorityManager`,
:class:`~repro.core.access.AccessPolicy`, the registration checkers and
a :class:`~repro.core.engine.RuleEngine` — and shares nothing mutable
with its siblings.  That independence is the scaling property the
cluster layer sells: shards drain their ingest queues with no cross-
shard locking, so N shards on N cores serve N× the event rate.

Registration runs through the same :class:`~repro.core.server.RulePipeline`
as the single-home :class:`~repro.core.server.HomeServer`; the periodic
clock tick is the same :meth:`~repro.core.engine.RuleEngine.clock_tick`.
A shard therefore behaves observably like a `HomeServer` for the homes
it owns — the property the cluster equivalence tests pin down.
"""

from __future__ import annotations

import json
import math
from time import perf_counter_ns
from typing import Any, Callable, Collection

from repro.core.action import ActionSpec
from repro.core.conflict import ConflictReport
from repro.core.engine import DEFAULT_MAX_TRACE, PromptPolicy
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.core.server import ConflictPolicy, build_rule_stack
from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS_MS, SIZE_BOUNDS
from repro.sim.events import Simulator
from repro.support.fsio import atomic_write_bytes
from repro.support.wal import WalWriter

Dispatch = Callable[[ActionSpec], None]


def _discard_dispatch(spec: ActionSpec) -> None:
    """Default action sink; cluster deployments plug real transports in."""


class EngineShard:
    """A self-contained rule engine for the homes one shard owns.

    The public methods below form the **shard surface** — the contract
    :class:`~repro.cluster.worker.ShardClient` re-implements over the
    wire so the bus, facade and durability plane route to in-thread and
    out-of-process shards uniformly.  Code above this class must not
    reach into ``shard.engine``/``shard.database`` directly.
    """

    #: Which side of the process boundary this shard runs on; the
    #: out-of-process proxy (`ShardClient`) reports ``"process"``.
    backend = "thread"

    def __init__(
        self,
        shard_id: int,
        simulator: Simulator,
        *,
        dispatch: Dispatch | None = None,
        prompt_policy: PromptPolicy | None = None,
        conflict_policy: ConflictPolicy | None = None,
        prefer_intervals: bool = True,
        incremental: bool = True,
        shared: bool = True,
        wheel: bool = True,
        columnar: bool = True,
        adaptive_ticks: bool = True,
        max_trace: int | None = DEFAULT_MAX_TRACE,
        clock_tick_period: float = 60.0,
        telemetry=None,
    ) -> None:
        self.shard_id = shard_id
        self.simulator = simulator
        # Observability seam: a repro.obs.trace.Telemetry (or None).
        # Latency histograms are bound once here; when telemetry is off
        # every ingest pays one None check and no clock reads.
        self.telemetry = telemetry
        if telemetry is not None and telemetry.enabled:
            registry = telemetry.registry
            self._write_hist = registry.histogram(
                "ingest.write_ms", DEFAULT_LATENCY_BOUNDS_MS)
            self._batch_hist = registry.histogram(
                "ingest.batch_ms", DEFAULT_LATENCY_BOUNDS_MS)
            self._batch_sizes = registry.histogram(
                "ingest.batch_size", SIZE_BOUNDS)
        else:
            self._write_hist = None
            self._batch_hist = None
            self._batch_sizes = None
        stack = build_rule_stack(
            simulator,
            dispatch=dispatch if dispatch is not None else _discard_dispatch,
            prompt_policy=prompt_policy,
            conflict_policy=conflict_policy,
            prefer_intervals=prefer_intervals,
            incremental=incremental,
            shared=shared,
            wheel=wheel,
            columnar=columnar,
            max_trace=max_trace,
            telemetry=telemetry,
        )
        self.database = stack.database
        self.priorities = stack.priorities
        self.access = stack.access
        self.consistency = stack.consistency
        self.conflicts = stack.conflicts
        self.engine = stack.engine
        self.pipeline = stack.pipeline
        # Bumped on every rule add/remove; the ingest bus keys its
        # coalesce-safety caches on it so churn invalidates them.
        self.epoch = 0
        # Mirrors hosted on this shard: cross-home rules homed here that
        # read variables another shard owns.  Refcounted per rule so
        # removal prunes a subscription exactly when its last reader
        # goes (matching every other index's pruning guarantee).
        self._mirror_rules: dict[str, set[str]] = {}    # variable -> rules
        self._rule_mirrors: dict[str, frozenset[str]] = {}
        # This shard's WAL writer (None while durability is detached);
        # owned here so the process backend appends in-worker.
        self._wal: WalWriter | None = None
        # -- clock ticks -----------------------------------------------------
        # With the time wheel on, a tick at a non-boundary time with no
        # DENIED/until/disabled/stateful clock-watchers is a no-op, so
        # the shard sleeps until the wheel's next armed boundary instead
        # of waking every period.  Wakes stay snapped to the fixed
        # cadence grid (anchor + k*period) so observable tick times — and
        # therefore traces — are identical to a fixed-cadence shard.
        self.clock_tick_period = clock_tick_period
        self.adaptive_ticks = adaptive_ticks and self.engine.wheel
        self.ticks = 0  # clock_tick invocations (scheduling observability)
        self.tick_sleeps = 0  # adaptive re-arms that skipped ≥1 grid tick
        self._tick_anchor = simulator.now
        self._tick_deadline: float | None = None
        self._tick_handle = None
        self._stopped = False
        if self.adaptive_ticks:
            self.engine.on_clock_demand_changed = self._on_clock_demand_changed
        self._arm_clock()

    # -- rule lifecycle --------------------------------------------------------

    def register_rule(
        self, rule: Rule, *, validate: bool = True
    ) -> list[ConflictReport]:
        reports = self.pipeline.register(rule, validate=validate)
        self.epoch += 1
        return reports

    def remove_rule(self, name: str) -> Rule:
        rule = self.pipeline.remove(name)
        self.epoch += 1
        return rule

    def add_priority_order(self, order: PriorityOrder) -> PriorityOrder:
        return self.priorities.add_order(order)

    @property
    def conflict_log(self) -> list[ConflictReport]:
        return self.pipeline.conflict_log

    def rule_count(self) -> int:
        return len(self.database)

    # -- engine reads ----------------------------------------------------------

    def rule_truth(self, name: str) -> bool:
        return self.engine.rule_truth(name)

    def rule_state(self, name: str):
        return self.engine.rule_state(name)

    def holder_of(self, udn: str):
        return self.engine.holder_of(udn)

    # -- world-state feeds -----------------------------------------------------

    def ingest(self, variable: str, value: Any) -> None:
        hist = self._write_hist
        if hist is None:
            self.engine.ingest(variable, value)
            return
        start = perf_counter_ns()
        self.engine.ingest(variable, value)
        hist.observe((perf_counter_ns() - start) / 1e6)

    def ingest_batch(self, writes: "list[tuple[str, Any]]") -> tuple[int, int]:
        """Apply a drained run of writes through the engine's bulk entry
        point (per-event semantics preserved); returns the batch's
        ``(atoms_flipped, clauses_touched)`` counter deltas."""
        hist = self._batch_hist
        if hist is None:
            return self.engine.ingest_batch(writes)
        start = perf_counter_ns()
        result = self.engine.ingest_batch(writes)
        hist.observe((perf_counter_ns() - start) / 1e6)
        self._batch_sizes.observe(len(writes))
        return result

    def post_event(
        self,
        event_type: str,
        subject: str | None = None,
        *,
        only: Collection[str] | None = None,
    ) -> None:
        """Fire an event; ``only`` scopes it to one home's rules (a
        shard hosts several homes, and a home-targeted event must not
        wake a co-located neighbour's rules)."""
        self.engine.post_event(event_type, subject, only=only)

    def barrier(self) -> tuple[int, int]:
        """Settle every feed sent so far and return the accumulated
        ``(atoms_flipped, clauses_touched)`` deltas not yet reported.

        An in-thread shard applies synchronously and returns its batch
        counters from :meth:`ingest_batch` directly, so here this is a
        no-op returning zeros; the process proxy pipelines its feeds and
        folds the worker-side counters back through this call."""
        return (0, 0)

    # -- coalescing safety -----------------------------------------------------

    def coalesce_safe(self, variable: str) -> bool:
        """Whether batched writes to ``variable`` may be coalesced to the
        latest value without changing observable truth/state/holders.

        This is the per-variable half of the proof; the bus supplies
        the other half by merging only *consecutive* runs of writes
        (see :mod:`repro.cluster.bus`).  Intermediate values are
        invisible after coalescing, so every
        rule reading the variable must have state that is a pure
        function of the *settled* world:

        * no ``until`` postcondition — an intermediate value (or even a
          repeated write acting as an until-check trigger) can stop the
          rule in a way the settled value cannot reproduce;
        * no duration atoms — a transient dip resets the held-since
          bookkeeping, which coalescing would skip;
        * no contested devices — with competitors, transient edges cause
          preempt/regrant handoffs whose outcome is history-dependent
          (the keep-status-quo prompt favours whoever fired first).

        Disabled rules count as live: re-enabling mid-batch must not
        retroactively make an applied coalescing unsound.
        """
        for rule in self.database.rules_reading_variable(variable):
            if rule.until is not None:
                return False
            if self.database.plan_of(rule.name).has_duration:
                return False
            for udn in rule.devices():
                if len(self.database.rules_for_device(udn)) > 1:
                    return False
        return True

    # -- mirror hosting (cross-shard rules) ------------------------------------

    def adopt_mirrors(self, rule_name: str,
                      variables: Collection[str]) -> list[str]:
        """Refcount a rule's mirror subscriptions; returns the variables
        newly mirrored into this shard (0→1 transitions), for which the
        caller must install bus routes and seed the current value."""
        fresh: list[str] = []
        footprint = frozenset(variables)
        for variable in sorted(footprint):
            readers = self._mirror_rules.get(variable)
            if readers is None:
                readers = self._mirror_rules[variable] = set()
                self.engine.world.mark_mirrored(variable, True)
                fresh.append(variable)
            readers.add(rule_name)
        if footprint:
            self._rule_mirrors[rule_name] = footprint
        return fresh

    def release_mirrors(self, rule_name: str) -> list[str]:
        """Drop a rule's mirror refcounts; returns the variables no rule
        on this shard still mirrors (the caller prunes their bus
        routes).  The last value stays in the world — harmless without
        readers, and a re-registration re-seeds from the owner."""
        freed: list[str] = []
        for variable in sorted(self._rule_mirrors.pop(rule_name, frozenset())):
            readers = self._mirror_rules.get(variable)
            if readers is None:
                continue
            readers.discard(rule_name)
            if not readers:
                del self._mirror_rules[variable]
                self.engine.world.mark_mirrored(variable, False)
                freed.append(variable)
        return freed

    def mirrors_of_rule(self, rule_name: str) -> frozenset[str]:
        return self._rule_mirrors.get(rule_name, frozenset())

    def mirror_variables(self) -> frozenset[str]:
        """Variables mirrored into this shard (hosted copies)."""
        return frozenset(self._mirror_rules)

    def variable_value(self, variable: str) -> Any:
        """Current world value (the mirror-seeding read)."""
        return self.engine.world.value_of(variable)

    # -- clock ticks -----------------------------------------------------------

    def _next_grid(self, at_or_after: float) -> float:
        """The first fixed-cadence grid point strictly after now and no
        earlier than ``at_or_after`` — adaptive wakes land exactly where
        a fixed-cadence shard would tick, so traces stay identical."""
        period = self.clock_tick_period
        anchor = self._tick_anchor
        steps = math.floor((self.simulator.now - anchor) / period + 1e-9) + 1
        target = anchor + steps * period
        if at_or_after > target:
            steps = math.ceil((at_or_after - anchor) / period - 1e-9)
            target = anchor + steps * period
        return target

    def _run_tick(self) -> None:
        self._tick_handle = None
        self._tick_deadline = None
        self.ticks += 1
        self.engine.clock_tick()
        self._arm_clock()

    def _arm_clock(self) -> None:
        """Full (re)schedule: from construction and after each tick."""
        if self._stopped:
            return
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        self._tick_deadline = None
        demand = (
            self.engine.clock_demand() if self.adaptive_ticks
            else self.simulator.now
        )
        if demand == math.inf:
            self.tick_sleeps += 1
            return  # nothing clock-driven; the demand hook re-arms us
        self._tick_deadline = self._next_grid(demand)
        if self.adaptive_ticks \
                and self._tick_deadline > self._next_grid(self.simulator.now):
            self.tick_sleeps += 1
        self._tick_handle = self.simulator.call_at(
            self._tick_deadline, self._run_tick
        )

    def _on_clock_demand_changed(self) -> None:
        """Pull the next wake earlier when tick demand grows; demand
        shrinking is left to the already-scheduled (no-op) tick."""
        if self._stopped:
            return
        demand = self.engine.clock_demand()
        if demand == math.inf:
            return
        target = self._next_grid(demand)
        if self._tick_deadline is not None and self._tick_deadline <= target:
            return
        if self._tick_handle is not None:
            self._tick_handle.cancel()
        self._tick_deadline = target
        self._tick_handle = self.simulator.call_at(target, self._run_tick)

    # -- telemetry -------------------------------------------------------------

    def telemetry_snapshot(self, *, queue_depth: int | None = None) -> dict | None:
        """One JSON-ready health snapshot of this shard (None when the
        shard runs without telemetry).

        Folds the cheap plain-int counters the hot paths maintain
        anyway (ticks, adaptive-tick sleeps, rule-churn epochs, wheel
        arming, columnar sweep counters) into the shard's registry at
        snapshot time — instrumenting those loops live would buy nothing
        but overhead — then returns the registry snapshot tagged with
        the shard id and the recent-spans ring."""
        telemetry = self.telemetry
        if telemetry is None or not telemetry.enabled:
            return None
        registry = telemetry.registry
        registry.counter("shard.ticks").value = self.ticks
        registry.counter("shard.tick_sleeps").value = self.tick_sleeps
        registry.counter("shard.epochs").value = self.epoch
        registry.gauge("shard.rules").set(float(len(self.database)))
        registry.gauge("shard.mirror_variables").set(
            float(len(self._mirror_rules)))
        if queue_depth is not None:
            registry.gauge("bus.queue_depth").set(float(queue_depth))
        wheel = self.engine.wheel_stats()
        if wheel is not None:
            registry.gauge("wheel.armed").set(float(wheel["armed"]))
            registry.counter("wheel.armed_total").value = wheel["armed_total"]
        columnar = self.engine.columnar_stats
        if columnar is not None:
            for field in ("writes", "batches", "batch_writes",
                          "atoms_flipped", "clauses_touched",
                          "vector_sweeps", "scalar_sweeps"):
                registry.counter(f"columnar.{field}").value = \
                    getattr(columnar, field)
        snapshot = registry.snapshot()
        snapshot["shard"] = self.shard_id
        snapshot["spans"] = [
            {"stage": span.stage, "at": span.at, "ms": span.ms,
             "home": span.home, "size": span.size}
            for span in telemetry.spans.recent()
        ]
        return snapshot

    # -- durability ------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-ready snapshot of this shard's runtime state — the
        engine's durable core plus the shard-level scheduling identity
        (epoch, tick anchor, counters) a restore must carry to keep the
        rule-churn caches and the fixed-cadence tick grid aligned."""
        return {
            "engine": self.engine.runtime_snapshot(),
            "epoch": self.epoch,
            "tick_anchor": self._tick_anchor,
            "ticks": self.ticks,
            "tick_sleeps": self.tick_sleeps,
        }

    def restore_world(self, state: dict) -> None:
        """Recovery phase 1: overlay the engine's world from a
        :meth:`snapshot_state` dict *before* rules re-register."""
        self.engine.restore_world(state["engine"])

    def set_recovery_hooks(self, disarmed: bool) -> None:
        """Disarm (or rearm) the engine's outward side effects —
        dispatch and held-timer arming — around recovery's
        re-registration pass."""
        if disarmed:
            self.engine.disarm_side_effects()
        else:
            self.engine.rearm_side_effects()

    def wal_open(
        self,
        path: str,
        *,
        fsync_interval: int = 16,
        faults=None,
    ) -> None:
        """(Re)open this shard's write-ahead log at ``path`` — the WAL
        lives behind the shard surface so the process backend appends
        (and fsyncs) in the worker, parallelizing durability I/O with
        the other shards' drains.  Any previous generation's writer is
        closed first."""
        self.wal_close()
        self._wal = WalWriter(path, fsync_interval=fsync_interval,
                              faults=faults)

    def wal_append(self, frame: bytes) -> int:
        """Append one pre-framed WAL record; returns its size."""
        return self._wal.append_frame(frame)

    def wal_sync(self) -> None:
        if self._wal is not None:
            self._wal.sync()

    def wal_close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def wal_arm_faults(self, faults) -> None:
        """Swap the crash-point injector on the live WAL writer."""
        if self._wal is not None:
            self._wal.faults = faults

    def snapshot_to(self, path: str) -> dict:
        """Serialize :meth:`snapshot_state` and write it atomically at
        ``path`` (in-worker for the process backend, so snapshot I/O
        parallelizes); returns ``{"epoch", "bytes"}`` for the caller's
        manifest bookkeeping."""
        state = self.snapshot_state()
        data = json.dumps(state, separators=(",", ":")).encode("utf-8")
        atomic_write_bytes(path, data)
        return {"epoch": state["epoch"], "bytes": len(data)}

    def recover(self, state: dict) -> None:
        """Recovery phase 2 for this shard: overlay the engine runtime
        (truth/states/holders/trace/wheel/held timers — rules must have
        been re-registered against the phase-1 world first), restore
        shard identity and re-arm the clock on the original grid.

        The restored shard may fire extra no-op grid ticks the original
        run slept through (adaptive-tick sleep decisions are not
        replayed); those are trace-invisible by the adaptive-tick
        equivalence argument, so observable behaviour matches.
        """
        self.engine.restore_runtime(state["engine"])
        self.epoch = state["epoch"]
        self._tick_anchor = state["tick_anchor"]
        self.ticks = state["ticks"]
        self.tick_sleeps = state["tick_sleeps"]
        self._arm_clock()

    # -- lifecycle -------------------------------------------------------------

    def trace(self) -> list:
        return list(self.engine.trace)

    def shutdown(self) -> None:
        self._stopped = True
        self.wal_close()
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        self._tick_deadline = None
