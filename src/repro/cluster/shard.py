"""One shard: an independent rule engine serving a subset of homes.

An :class:`EngineShard` owns a full vertical slice of the single-home
framework — :class:`~repro.core.database.RuleDatabase`,
:class:`~repro.core.priority.PriorityManager`,
:class:`~repro.core.access.AccessPolicy`, the registration checkers and
a :class:`~repro.core.engine.RuleEngine` — and shares nothing mutable
with its siblings.  That independence is the scaling property the
cluster layer sells: shards drain their ingest queues with no cross-
shard locking, so N shards on N cores serve N× the event rate.

Registration runs through the same :class:`~repro.core.server.RulePipeline`
as the single-home :class:`~repro.core.server.HomeServer`; the periodic
clock tick is the same :meth:`~repro.core.engine.RuleEngine.clock_tick`.
A shard therefore behaves observably like a `HomeServer` for the homes
it owns — the property the cluster equivalence tests pin down.
"""

from __future__ import annotations

from typing import Any, Callable, Collection

from repro.core.action import ActionSpec
from repro.core.conflict import ConflictReport
from repro.core.engine import DEFAULT_MAX_TRACE, PromptPolicy
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.core.server import ConflictPolicy, build_rule_stack
from repro.sim.events import Simulator

Dispatch = Callable[[ActionSpec], None]


def _discard_dispatch(spec: ActionSpec) -> None:
    """Default action sink; cluster deployments plug real transports in."""


class EngineShard:
    """A self-contained rule engine for the homes one shard owns."""

    def __init__(
        self,
        shard_id: int,
        simulator: Simulator,
        *,
        dispatch: Dispatch | None = None,
        prompt_policy: PromptPolicy | None = None,
        conflict_policy: ConflictPolicy | None = None,
        prefer_intervals: bool = True,
        incremental: bool = True,
        shared: bool = True,
        wheel: bool = True,
        max_trace: int | None = DEFAULT_MAX_TRACE,
        clock_tick_period: float = 60.0,
    ) -> None:
        self.shard_id = shard_id
        self.simulator = simulator
        stack = build_rule_stack(
            simulator,
            dispatch=dispatch if dispatch is not None else _discard_dispatch,
            prompt_policy=prompt_policy,
            conflict_policy=conflict_policy,
            prefer_intervals=prefer_intervals,
            incremental=incremental,
            shared=shared,
            wheel=wheel,
            max_trace=max_trace,
        )
        self.database = stack.database
        self.priorities = stack.priorities
        self.access = stack.access
        self.consistency = stack.consistency
        self.conflicts = stack.conflicts
        self.engine = stack.engine
        self.pipeline = stack.pipeline
        # Bumped on every rule add/remove; the ingest bus keys its
        # coalesce-safety caches on it so churn invalidates them.
        self.epoch = 0
        self._clock_task = simulator.every(
            clock_tick_period, self.engine.clock_tick
        )

    # -- rule lifecycle --------------------------------------------------------

    def register_rule(
        self, rule: Rule, *, validate: bool = True
    ) -> list[ConflictReport]:
        reports = self.pipeline.register(rule, validate=validate)
        self.epoch += 1
        return reports

    def remove_rule(self, name: str) -> Rule:
        rule = self.pipeline.remove(name)
        self.epoch += 1
        return rule

    def add_priority_order(self, order: PriorityOrder) -> PriorityOrder:
        return self.priorities.add_order(order)

    @property
    def conflict_log(self) -> list[ConflictReport]:
        return self.pipeline.conflict_log

    # -- world-state feeds -----------------------------------------------------

    def ingest(self, variable: str, value: Any) -> None:
        self.engine.ingest(variable, value)

    def post_event(
        self,
        event_type: str,
        subject: str | None = None,
        *,
        only: Collection[str] | None = None,
    ) -> None:
        """Fire an event; ``only`` scopes it to one home's rules (a
        shard hosts several homes, and a home-targeted event must not
        wake a co-located neighbour's rules)."""
        self.engine.post_event(event_type, subject, only=only)

    # -- coalescing safety -----------------------------------------------------

    def coalesce_safe(self, variable: str) -> bool:
        """Whether batched writes to ``variable`` may be coalesced to the
        latest value without changing observable truth/state/holders.

        This is the per-variable half of the proof; the bus supplies
        the other half by merging only *consecutive* runs of writes
        (see :mod:`repro.cluster.bus`).  Intermediate values are
        invisible after coalescing, so every
        rule reading the variable must have state that is a pure
        function of the *settled* world:

        * no ``until`` postcondition — an intermediate value (or even a
          repeated write acting as an until-check trigger) can stop the
          rule in a way the settled value cannot reproduce;
        * no duration atoms — a transient dip resets the held-since
          bookkeeping, which coalescing would skip;
        * no contested devices — with competitors, transient edges cause
          preempt/regrant handoffs whose outcome is history-dependent
          (the keep-status-quo prompt favours whoever fired first).

        Disabled rules count as live: re-enabling mid-batch must not
        retroactively make an applied coalescing unsound.
        """
        for rule in self.database.rules_reading_variable(variable):
            if rule.until is not None:
                return False
            if self.database.plan_of(rule.name).has_duration:
                return False
            for udn in rule.devices():
                if len(self.database.rules_for_device(udn)) > 1:
                    return False
        return True

    # -- lifecycle -------------------------------------------------------------

    def trace(self) -> list:
        return list(self.engine.trace)

    def shutdown(self) -> None:
        self._clock_task.cancel()
