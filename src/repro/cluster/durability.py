"""The durability plane: checkpointed shard snapshots + an ingest WAL.

A :class:`DurabilityPlane` bound to a :class:`~repro.cluster.server.ClusterServer`
persists two artifacts per shard under one directory:

Snapshot (``snap-<id>-shard<k>.json``)
    The shard's durable runtime core (see
    :meth:`~repro.cluster.shard.EngineShard.snapshot_state`): the world,
    edge-trigger truth, rule states and device holders, held-since
    bookkeeping with pending recheck timers, the time wheel's armed
    boundaries, enable flags, the trace ring, the rule-churn epoch and
    tick-grid identity.  Deliberately *absent* is every derived index —
    columnar atom/clause columns, shared-network nodes, watch sets,
    mirror routes — because re-registering the rules against the
    restored world rebuilds all of it exactly.

WAL (``wal-<id>-shard<k>.log``)
    Every drained ingest batch, framed and checksummed
    (:mod:`repro.support.wal`), appended *before* the batch is applied.
    Records carry a cluster-global sequence number (replay merges the
    per-shard tails back into apply order), the simulated drain time and
    the shard's rule-churn epoch.

``MANIFEST.json`` names the current generation's files plus everything
cluster-level a restore needs — the construction config, the rule
registration order, trace home-spans, per-shard applied-entry counts —
and its atomic replacement *is* the checkpoint commit point: a crash
anywhere before it recovers from the previous generation (whose WAL kept
growing through the attempt), a crash after it from the new one (whose
missing/empty WALs read as empty).

Recovery (:func:`restore_cluster`) is snapshot + tail-replay:

1. advance a fresh simulator to the snapshot time;
2. build a cluster from the manifest config and overlay each shard's
   *world* (phase 1);
3. re-register the caller's rules in the original order with dispatch
   and held-timer hooks disarmed — subscription evaluates atoms against
   the restored world, rebuilding every backend index;
4. overlay each shard's *runtime* — truth/states/holders/trace, watch
   sets, wheel schedule, held rechecks, tick grid (phase 2);
5. replay the WAL tails in global sequence order, advancing the
   simulator to each record's drain time so timers interleave as they
   originally did.

Damage is tolerated by truncating to the longest valid prefix: torn
frames and checksum failures stop the disk scan
(:func:`repro.support.wal.read_wal`), and a record whose epoch disagrees
with the snapshot stops replay for that shard.  Both are surfaced per
shard in the returned :class:`RecoveryReport`; only an unusable manifest
or snapshot raises (:class:`~repro.errors.RecoveryError`).  Replayed
batches re-dispatch their device actions — recovery is at-least-once at
the actuator boundary, exactly once for engine state.

Known limitation: replay fires *all* simulator events at or before a
record's drain time before applying the record, so a timer scheduled at
exactly the drain time may observe the batch on the other side compared
to the original run.  The equivalence suite drives ingest at fractional
timestamps to keep batches and whole-second timers unambiguous.

Crash-point injection threads one :class:`~repro.sim.faults.FaultInjector`
through every durability code path: the WAL append (lost / torn /
durable-but-unapplied records), each entry of the bus's apply loop, each
snapshot write, and the manifest commit — :data:`ALL_CRASH_SITES` is the
menu the randomized restart-equivalence suite draws from.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Callable, Iterable, Sequence

from repro.cluster.server import ClusterServer
from repro.cluster.wire import decode_value as _decode_value
from repro.cluster.wire import encode_value as _encode_value
from repro.core.action import ActionSpec
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.errors import RecoveryError, WorkerCrashed
from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS_MS
from repro.sim.faults import FaultInjector
from repro.sim.events import Simulator
from repro.support.fsio import atomic_write_text
from repro.support.wal import WAL_CRASH_SITES, encode_record, read_wal

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = "repro-cluster-snapshot/1"

CRASH_DRAIN_APPLY = "drain-apply"
CRASH_SNAPSHOT_WRITE = "snapshot-write"
CRASH_MANIFEST_COMMIT = "manifest-commit"

#: Every instrumented crash point, WAL append sites included — the site
#: menu for FaultInjector.random in the restart-equivalence suite.
ALL_CRASH_SITES = WAL_CRASH_SITES + (
    CRASH_DRAIN_APPLY, CRASH_SNAPSHOT_WRITE, CRASH_MANIFEST_COMMIT,
)


def _encode_entries(entries: Sequence) -> list:
    """Bus queue entries (write/event objects) → WAL entry lists.

    An event's ``only`` scope is materialized at log time — the drain
    applies the batch immediately after logging, so the membership
    recorded is exactly the membership the apply observed."""
    encoded: list = []
    for entry in entries:
        if hasattr(entry, "variable"):
            encoded.append(["w", entry.variable, _encode_value(entry.value)])
        else:
            only = entry.only
            encoded.append([
                "e", entry.event_type, entry.subject,
                sorted(only) if only is not None else None,
            ])
    return encoded


def _decode_entries(raw: Sequence) -> list:
    return [
        ["w", entry[1], _decode_value(entry[2])] if entry[0] == "w" else entry
        for entry in raw
    ]


class DurabilityPlane:
    """Snapshot + WAL management for one cluster, rooted at a directory.

    Bind with :meth:`ClusterServer.attach_durability` (which takes the
    initial checkpoint); thereafter the bus logs every drained batch
    through :meth:`log_batch` and rule churn triggers an eager
    re-checkpoint from the facade, keeping snapshot and WAL epochs
    aligned.  ``faults`` arms crash-point injection across every
    durability code path (see :data:`ALL_CRASH_SITES`).
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync_interval: int = 16,
        faults: FaultInjector | None = None,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.fsync_interval = fsync_interval
        self.faults = faults
        self._server: ClusterServer | None = None
        # WAL writers live *behind the shard surface* (the process
        # backend appends in-worker); this flag tracks whether the
        # current generation's logs are open.
        self._wal_ready = False
        self._manifest: dict | None = None
        self._epochs: list[int] = []
        self._wal_seq = 0
        self._checkpointing = False
        # Continue the generation numbering of any previous incarnation
        # over this directory, so file names never collide across a
        # crash/restore cycle.
        self._snapshot_id = 0
        try:
            with open(self._path(MANIFEST_NAME), encoding="utf-8") as handle:
                self._snapshot_id = int(json.load(handle)["snapshot_id"])
        except (OSError, ValueError, TypeError, KeyError):
            pass
        # Metric handles, bound to the cluster's bus registry in bind().
        self._checkpoints = None
        self._snapshot_bytes = None
        self._snapshot_ms = None
        self._wal_records = None
        self._wal_bytes = None

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def bind(self, server: ClusterServer) -> None:
        if self.faults is not None and any(
            getattr(shard, "backend", "thread") == "process"
            for shard in server.shards
        ):
            raise RecoveryError(
                "crash-point injection is not supported on the process "
                "backend; crash the worker process instead"
            )
        self._server = server
        registry = server.bus.registry
        self._checkpoints = registry.counter("recovery.checkpoints")
        self._snapshot_bytes = registry.counter("recovery.snapshot_bytes")
        self._snapshot_ms = registry.histogram(
            "recovery.snapshot_ms", DEFAULT_LATENCY_BOUNDS_MS)
        self._wal_records = registry.counter("recovery.wal_records")
        self._wal_bytes = registry.counter("recovery.wal_bytes")

    def fire(self, site: str) -> None:
        """Pass through a named crash point (no-op without faults)."""
        if self.faults is not None:
            self.faults.check(site)

    def arm_faults(self, faults: FaultInjector | None) -> None:
        """Install (or swap) the crash-point injector, reaching into the
        live WAL writers too — test harnesses attach the plane cleanly
        (the initial checkpoint must commit) and arm faults afterwards."""
        self.faults = faults
        if self._server is not None:
            for shard in self._server.shards:
                shard.wal_arm_faults(faults)

    # -- write path ------------------------------------------------------------

    def log_batch(self, index: int, epoch: int, entries: Sequence) -> None:
        """Append one detached drain batch to the shard's WAL, before it
        is applied.

        An epoch disagreeing with the snapshot means rule churn the
        eager churn-checkpoint failed to capture (it crashed, or the
        plane was attached mid-life): re-checkpoint first, so the record
        lands in a WAL whose snapshot it agrees with.  The batch is
        already detached from the queue, so the nested flush cannot
        double-log it, and its effects are not yet in any snapshot.
        Inside a checkpoint's own flush, records go to the *old*
        generation's WAL: their effects land in the snapshot being
        written, and the old WAL only matters if the commit never
        happens — in which case those records are exactly what the old
        generation needs.
        """
        if not self._wal_ready:
            return  # first checkpoint in flight; effects land in it
        if epoch != self._epochs[index] and not self._checkpointing:
            self.checkpoint()
        self._wal_seq += 1
        payload = {
            "seq": self._wal_seq,
            "t": self._server.simulator.now,
            "epoch": epoch,
            "n": _encode_entries(entries),
        }
        # Encode once; the shard surface appends the same frame bytes
        # whether the writer is local or in a worker process (where the
        # WAL frame rides the socket ahead of the batch it describes,
        # preserving append-before-apply).
        size = self._server.shards[index].wal_append(encode_record(payload))
        if self._wal_records is not None:
            self._wal_records.inc()
            self._wal_bytes.inc(size)

    def checkpoint(self) -> dict:
        """Write a full snapshot generation and commit it.

        Sequence: settle every queue (the flushed batches' effects then
        belong to the snapshot), write each shard snapshot atomically,
        clear any stale files at the new WAL names, atomically replace
        the manifest (the commit point), then swap in fresh WAL writers
        and garbage-collect the superseded generation.  A crash strictly
        before the manifest replace leaves the previous generation fully
        recoverable; strictly after, the new one (fresh WALs read as
        empty even if their files were never created).
        """
        server = self._server
        if server is None:
            raise RecoveryError("durability plane is not bound to a cluster")
        if self._checkpointing:
            return self._manifest or {}
        self._checkpointing = True
        try:
            start = perf_counter_ns()
            server.bus.flush()
            snapshot_id = self._snapshot_id + 1
            shard_files: list[dict] = []
            epochs: list[int] = []
            total_bytes = 0
            for index, shard in enumerate(server.shards):
                self.fire(CRASH_SNAPSHOT_WRITE)
                snap_name = f"snap-{snapshot_id}-shard{index}.json"
                # The shard serializes and writes its own snapshot — on
                # the process backend that happens in the worker, so
                # snapshot I/O parallelizes across shards' cores.
                info = shard.snapshot_to(self._path(snap_name))
                epochs.append(info["epoch"])
                total_bytes += info["bytes"]
                shard_files.append({
                    "snapshot": snap_name,
                    "wal": f"wal-{snapshot_id}-shard{index}.log",
                })
            manifest = {
                "format": MANIFEST_FORMAT,
                "snapshot_id": snapshot_id,
                "time": server.simulator.now,
                "wal_seq": self._wal_seq,
                "config": dict(server._config),
                "rules": list(server._shard_of_rule),
                "home_spans": {
                    name: [[when, home] for when, home in spans]
                    for name, spans in server._home_spans.items()
                },
                "applied_counts": list(server.bus.applied_counts),
                "shards": shard_files,
            }
            for entry in shard_files:
                # A crashed previous incarnation may have left content
                # at these names; the new generation's WALs start empty.
                try:
                    os.unlink(self._path(entry["wal"]))
                except OSError:
                    pass
            self.fire(CRASH_MANIFEST_COMMIT)
            atomic_write_text(
                self._path(MANIFEST_NAME),
                json.dumps(manifest, indent=2) + "\n",
            )
            # Committed: swap generations (each shard closes its old
            # writer and opens the new name).
            for shard, entry in zip(server.shards, shard_files):
                shard.wal_close()
                shard.wal_open(
                    self._path(entry["wal"]),
                    fsync_interval=self.fsync_interval,
                    faults=self.faults,
                )
            self._wal_ready = True
            self._manifest = manifest
            self._snapshot_id = snapshot_id
            self._epochs = epochs
            self._collect_garbage(manifest)
            if self._checkpoints is not None:
                self._checkpoints.inc()
                self._snapshot_bytes.inc(total_bytes)
                self._snapshot_ms.observe((perf_counter_ns() - start) / 1e6)
            return manifest
        finally:
            self._checkpointing = False

    def _collect_garbage(self, manifest: dict) -> None:
        """Drop snapshot/WAL files the committed manifest does not
        reference (superseded generations, orphans of crashed
        checkpoints).  Best effort — recovery only ever reads files the
        manifest names, so leftovers are waste, not danger."""
        referenced = {MANIFEST_NAME}
        for entry in manifest["shards"]:
            referenced.add(entry["snapshot"])
            referenced.add(entry["wal"])
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if name in referenced:
                continue
            if name.startswith("snap-") or name.startswith("wal-"):
                try:
                    os.unlink(self._path(name))
                except OSError:
                    pass

    def sync(self) -> None:
        """Force-fsync every shard's WAL (a durability barrier between
        the batched fsync intervals)."""
        if self._server is None:
            return
        for shard in self._server.shards:
            shard.wal_sync()

    def close(self) -> None:
        if self._server is None:
            return
        for shard in self._server.shards:
            try:
                shard.wal_close()
            except WorkerCrashed:
                # A dead worker's WAL is already as durable as it will
                # get; close must not block cluster shutdown.
                pass
        self._wal_ready = False


# -- recovery --------------------------------------------------------------------


@dataclass
class ShardRecovery:
    """One shard's replay outcome inside a :class:`RecoveryReport`."""

    shard: int
    wal_records: int = 0        # valid frames decoded from disk
    records_replayed: int = 0
    entries_replayed: int = 0
    truncated: bool = False
    reason: str = ""


@dataclass
class RecoveryReport:
    """What :func:`restore_cluster` rebuilt and what it had to drop."""

    snapshot_id: int
    snapshot_time: float
    rules_restored: int = 0
    rules_missing: list[str] = field(default_factory=list)
    shards: list[ShardRecovery] = field(default_factory=list)

    def ok(self) -> bool:
        """True when recovery was lossless: every manifest rule was
        supplied and no shard's WAL tail had to be truncated."""
        return not self.rules_missing and not any(
            shard.truncated for shard in self.shards
        )

    def describe(self) -> str:
        parts = [
            f"snapshot {self.snapshot_id} @ t={self.snapshot_time:g}",
            f"rules={self.rules_restored}",
        ]
        if self.rules_missing:
            parts.append(f"missing={len(self.rules_missing)}")
        for shard in self.shards:
            note = f" ({shard.reason})" if shard.truncated else ""
            parts.append(
                f"shard{shard.shard}: {shard.records_replayed} records/"
                f"{shard.entries_replayed} entries{note}"
            )
        return "; ".join(parts)


def restore_cluster(
    directory: str,
    simulator: Simulator,
    rules: Iterable[Rule],
    *,
    priority_orders: Iterable[PriorityOrder] = (),
    dispatch: Callable[[ActionSpec], None] | None = None,
    prompt_policy=None,
    conflict_policy=None,
    fsync_interval: int = 16,
    faults: FaultInjector | None = None,
    attach: bool = True,
    backend: str | None = None,
) -> tuple[ClusterServer, RecoveryReport]:
    """Rebuild a cluster from its durability directory.

    ``simulator`` must be fresh (at or before the snapshot time); it is
    advanced to the snapshot time, then through each replayed record's
    drain time.  ``rules`` supplies the live Rule objects by name — rule
    *definitions* are code, not data, exactly as in
    :func:`repro.support.persistence.restore_household`; manifest rules
    with no supplied definition are skipped and reported.  Returns the
    serving cluster plus a :class:`RecoveryReport`; with ``attach`` a
    fresh :class:`DurabilityPlane` (and an immediate checkpoint folding
    the replayed tail into a new snapshot generation) is installed.

    ``backend`` overrides the manifest's recorded shard backend — a
    cluster that crashed as worker processes may restore in-thread and
    vice versa; the durable state is backend-agnostic.
    """
    start = perf_counter_ns()
    try:
        with open(os.path.join(directory, MANIFEST_NAME),
                  encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError as exc:
        raise RecoveryError(
            f"no recovery manifest in {directory!r}") from exc
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RecoveryError(f"undecodable recovery manifest: {exc}") from exc
    if not isinstance(manifest, dict) \
            or manifest.get("format") != MANIFEST_FORMAT:
        found = manifest.get("format") if isinstance(manifest, dict) else None
        raise RecoveryError(f"unsupported snapshot format: {found!r}")
    snapshot_time = manifest["time"]
    if simulator.now > snapshot_time:
        raise RecoveryError(
            f"simulator is already past the snapshot time "
            f"({simulator.now:g} > {snapshot_time:g}); recovery needs a "
            f"fresh simulator"
        )
    simulator.run_until(snapshot_time)
    config = manifest["config"]
    resolved_backend = (
        backend if backend is not None
        else config.get("backend", "thread")
    )
    if faults is not None and resolved_backend == "process":
        raise RecoveryError(
            "crash-point injection is not supported on the process "
            "backend"
        )
    server = ClusterServer(
        simulator,
        shard_count=config["shard_count"],
        backend=resolved_backend,
        dispatch=dispatch,
        coalesce=config["coalesce"],
        batch=config["batch"],
        drain_delay=config["drain_delay"],
        prompt_policy=prompt_policy,
        conflict_policy=conflict_policy,
        prefer_intervals=config["prefer_intervals"],
        incremental=config["incremental"],
        shared=config["shared"],
        wheel=config["wheel"],
        columnar=config["columnar"],
        adaptive_ticks=config["adaptive_ticks"],
        max_trace=config["max_trace"],
        clock_tick_period=config["clock_tick_period"],
        telemetry=config["telemetry"],
    )
    states: list[dict] = []
    for entry in manifest["shards"]:
        try:
            with open(os.path.join(directory, entry["snapshot"]),
                      encoding="utf-8") as handle:
                states.append(json.load(handle))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RecoveryError(
                f"unreadable shard snapshot {entry['snapshot']!r}: {exc}"
            ) from exc
    report = RecoveryReport(
        snapshot_id=manifest["snapshot_id"], snapshot_time=snapshot_time)
    # Phase 1: worlds first, so re-registration subscribes every backend
    # against the restored values.
    for shard, state in zip(server.shards, states):
        shard.restore_world(state)
    # Re-register in the original order (shard-local rule ids, and with
    # them evaluation order, depend on it) with side-effect hooks
    # disarmed: restored holders already reflect pre-crash dispatches,
    # and held timers are restored verbatim in phase 2.
    for shard in server.shards:
        shard.set_recovery_hooks(True)
    try:
        by_name = {rule.name: rule for rule in rules}
        for name in manifest["rules"]:
            rule = by_name.get(name)
            if rule is None:
                report.rules_missing.append(name)
                continue
            server.register_rule(rule, validate=False)
            report.rules_restored += 1
        for order in priority_orders:
            server.add_priority_order(order)
    finally:
        for shard in server.shards:
            shard.set_recovery_hooks(False)
    # Registration stamped fresh home spans at the snapshot time;
    # overlay the recorded history (it also covers removed rules).
    server._home_spans = {
        name: [(when, home) for when, home in spans]
        for name, spans in manifest["home_spans"].items()
    }
    server.bus.applied_counts = list(manifest["applied_counts"])
    # Phase 2: runtime overlay (truth/states/holders/trace/wheel/held
    # timers/tick grid) erases registration-time side effects.
    for shard, state in zip(server.shards, states):
        shard.recover(state)
    # WAL tails: per shard, keep the longest prefix that is both
    # structurally valid on disk and epoch-consistent with the snapshot.
    kept_records: list[list[dict]] = []
    for index, entry in enumerate(manifest["shards"]):
        records, read_report = read_wal(
            os.path.join(directory, entry["wal"]))
        shard_report = ShardRecovery(shard=index, wal_records=len(records))
        epoch = states[index]["epoch"]
        kept: list[dict] = []
        for record in records:
            if record.get("epoch") != epoch:
                shard_report.truncated = True
                shard_report.reason = (
                    f"epoch mismatch: record epoch {record.get('epoch')!r}"
                    f" != snapshot epoch {epoch}"
                )
                break
            kept.append(record)
        else:
            if read_report.truncated:
                shard_report.truncated = True
                shard_report.reason = read_report.reason
        kept_records.append(kept)
        report.shards.append(shard_report)
    merged = sorted(
        (record["seq"], index, record)
        for index, records in enumerate(kept_records)
        for record in records
    )
    for _, index, record in merged:
        if record["t"] > simulator.now:
            # Fire timers up to the drain time first — the original run
            # interleaved them the same way (batches drained at t after
            # events strictly before t).
            simulator.run_until(record["t"])
        entries = _decode_entries(record["n"])
        server.bus.apply_entries(index, entries)
        shard_report = report.shards[index]
        shard_report.records_replayed += 1
        shard_report.entries_replayed += len(entries)
    registry = server.bus.registry
    registry.counter("recovery.replayed_records").inc(
        sum(shard.records_replayed for shard in report.shards))
    registry.counter("recovery.replayed_entries").inc(
        sum(shard.entries_replayed for shard in report.shards))
    registry.counter("recovery.truncated_wals").inc(
        sum(1 for shard in report.shards if shard.truncated))
    registry.histogram(
        "recovery.restore_ms", DEFAULT_LATENCY_BOUNDS_MS
    ).observe((perf_counter_ns() - start) / 1e6)
    if attach:
        server.attach_durability(DurabilityPlane(
            directory, fsync_interval=fsync_interval, faults=faults))
    return server, report


__all__ = [
    "ALL_CRASH_SITES",
    "CRASH_DRAIN_APPLY",
    "CRASH_MANIFEST_COMMIT",
    "CRASH_SNAPSHOT_WRITE",
    "DurabilityPlane",
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "RecoveryReport",
    "ShardRecovery",
    "restore_cluster",
]
