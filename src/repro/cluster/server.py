"""The cluster facade: multi-home serving behind one `HomeServer`-shaped API.

A :class:`ClusterServer` owns a :class:`~repro.cluster.router.ShardRouter`,
N independent :class:`~repro.cluster.shard.EngineShard`\\ s and one
:class:`~repro.cluster.bus.IngestBus`, and mirrors the single-home
:class:`~repro.core.server.HomeServer` surface — ``register_rule``,
``remove_rule``, ``ingest``, ``post_event``, ``trace``, ``shutdown`` —
so application code written against one home scales to a fleet by
swapping the facade.

Placement is a two-phase plan
(:meth:`~repro.cluster.router.ShardRouter.placement_plan`): a rule is
**homed** on the shard owning its action devices and ``until``
variables, and every condition variable owned by another home is
**mirrored** into that shard via an ingest-bus subscription.  A
building-wide rule ("if any apartment's smoke sensor fires, unlock the
lobby door") therefore registers like any other — its foreign sensors
simply arrive through the normal ingest path as mirrored writes.  Only
the *anchor* (actions + until) must stay within one home key.

Ingestion: ``ingest``/``post_event`` publish to the bus, which applies
them on the simulator in per-shard FIFO batches; call :meth:`flush` (or
run the simulator) to settle.  With coalescing on, bursty repeated
writes collapse to their latest value wherever the owning shard proves
that safe — mirrored variables never coalesce (the owner shard cannot
vouch for readers it does not host).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.cluster.bus import BusStats, IngestBus
from repro.cluster.router import PlacementPlan, ShardRouter
from repro.cluster.shard import EngineShard
from repro.core.action import ActionSpec
from repro.core.conflict import ConflictReport
from repro.core.engine import DEFAULT_MAX_TRACE, PromptPolicy, RuleState, TraceEntry
from repro.core.plan import compile_condition
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.core.server import ConflictPolicy, coerce_reading
from repro.errors import DuplicateRuleError, UnknownRuleError
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.trace import Telemetry
from repro.obs.prom import render_prometheus
from repro.sim.events import Simulator


class _LiveUnion:
    """Read-through union of live rule-name sets.

    Handed to the bus as an event's ``only`` scope when one shard hosts
    both a home's own rules and cross-home watchers of that home: rule
    churn between publish and drain stays visible, exactly as it does
    for a single live membership set.
    """

    __slots__ = ("_groups",)

    def __init__(self, groups: Iterable[Iterable[str]]) -> None:
        self._groups = tuple(groups)

    def __contains__(self, name: object) -> bool:
        return any(name in group for group in self._groups)

    def __iter__(self) -> Iterator[str]:
        seen: set[str] = set()
        for group in self._groups:
            for name in group:
                if name not in seen:
                    seen.add(name)
                    yield name

    def __len__(self) -> int:
        return sum(1 for _ in self)


class ClusterServer:
    """Sharded multi-home rule serving with a batched async ingest bus."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        shard_count: int = 4,
        router: ShardRouter | None = None,
        dispatch: Callable[[ActionSpec], None] | None = None,
        backend: str = "thread",
        coalesce: bool = True,
        batch: bool = True,
        drain_delay: float = 0.0,
        prompt_policy: PromptPolicy | None = None,
        conflict_policy: ConflictPolicy | None = None,
        prefer_intervals: bool = True,
        incremental: bool = True,
        shared: bool = True,
        wheel: bool = True,
        columnar: bool = True,
        adaptive_ticks: bool = True,
        max_trace: int | None = DEFAULT_MAX_TRACE,
        clock_tick_period: float = 60.0,
        telemetry: bool = True,
        durability=None,
    ) -> None:
        if backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process': {backend!r}")
        self.simulator = simulator
        self.backend = backend
        self.router = router if router is not None else ShardRouter(shard_count)
        # Construction config, recorded verbatim in the durability
        # manifest so ClusterServer.restore can rebuild an identically
        # configured cluster (hash-based ShardRouter placement is a pure
        # function of shard_count; custom routers are not snapshotted).
        self._config = {
            "shard_count": self.router.shard_count,
            "backend": backend,
            "coalesce": coalesce,
            "batch": batch,
            "drain_delay": drain_delay,
            "prefer_intervals": prefer_intervals,
            "incremental": incremental,
            "shared": shared,
            "wheel": wheel,
            "columnar": columnar,
            "adaptive_ticks": adaptive_ticks,
            "max_trace": max_trace,
            "clock_tick_period": clock_tick_period,
            "telemetry": telemetry,
        }
        # One Telemetry per shard (its own registry + span recorder, so
        # shards never contend) plus one cluster registry for the bus;
        # telemetry() folds them into per-shard and aggregate views.
        self.telemetry_enabled = telemetry
        self._bus_registry = MetricsRegistry()
        if backend == "process":
            # One worker process per shard; the engine configuration
            # ships in the HELLO and the Telemetry (if any) is built
            # worker-side on the worker's private clock.
            from repro.cluster.worker import ShardClient
            shard_config = {
                "prompt_policy": prompt_policy,
                "conflict_policy": conflict_policy,
                "prefer_intervals": prefer_intervals,
                "incremental": incremental,
                "shared": shared,
                "wheel": wheel,
                "columnar": columnar,
                "adaptive_ticks": adaptive_ticks,
                "max_trace": max_trace,
                "clock_tick_period": clock_tick_period,
                "telemetry": telemetry,
            }
            self.shards = []
            try:
                for index in range(self.router.shard_count):
                    self.shards.append(ShardClient(
                        index, simulator,
                        config=shard_config, dispatch=dispatch,
                    ))
            except BaseException:
                for client in self.shards:
                    client.shutdown()
                raise
        else:
            self.shards = [
                EngineShard(
                    index,
                    simulator,
                    dispatch=dispatch,
                    prompt_policy=prompt_policy,
                    conflict_policy=conflict_policy,
                    prefer_intervals=prefer_intervals,
                    incremental=incremental,
                    shared=shared,
                    wheel=wheel,
                    columnar=columnar,
                    adaptive_ticks=adaptive_ticks,
                    max_trace=max_trace,
                    clock_tick_period=clock_tick_period,
                    telemetry=(
                        Telemetry(shard=index, clock=lambda: simulator.now)
                        if telemetry else None
                    ),
                )
                for index in range(self.router.shard_count)
            ]
        self.bus = IngestBus(
            simulator, self.shards, self.router,
            coalesce=coalesce, batch=batch, drain_delay=drain_delay,
            registry=self._bus_registry,
        )
        self._shard_of_rule: dict[str, int] = {}
        self._home_of_rule: dict[str, str] = {}
        self._variable_units: dict[str, str] = {}
        # Live membership sets handed to home-scoped events (see
        # IngestBus._Event.only); pruned on removal.
        self._rules_of_home: dict[str, set[str]] = {}
        # Cross-home rules watching a foreign home, grouped by the shard
        # hosting them: home -> shard index -> live rule-name set.  A
        # home-scoped event must wake these too — a lobby rule reading
        # apartment 3's smoke sensor is "of" apartment 3 for events.
        self._remote_watchers: dict[str, dict[int, set[str]]] = {}
        self._mirrors_of_rule: dict[str, frozenset[str]] = {}
        # Trace attribution that survives removal *and* name reuse:
        # (registration time, home) spans per rule name — an entry
        # belongs to the home whose span covers its timestamp.
        self._home_spans: dict[str, list[tuple[float, str]]] = {}
        self._shutdown = False
        self.durability = None
        if durability is not None:
            self.attach_durability(durability)

    # -- durability ------------------------------------------------------------

    def attach_durability(self, plane) -> None:
        """Install a :class:`~repro.cluster.durability.DurabilityPlane`:
        binds its metrics to the bus registry, hooks WAL logging into
        the drain path, and takes the initial checkpoint.  For bulk
        loads, register rules first and attach after — every subsequent
        rule add/remove re-checkpoints eagerly (snapshots must agree
        with their WAL's rule epoch)."""
        self.durability = plane
        plane.bind(self)
        self.bus.attach_durability(plane)
        plane.checkpoint()

    def checkpoint(self) -> dict:
        """Force a snapshot generation now (the WAL tail folds into it);
        returns the committed manifest."""
        if self.durability is None:
            raise RuntimeError("no durability plane attached")
        return self.durability.checkpoint()

    @classmethod
    def restore(cls, directory: str, simulator: Simulator, rules,
                **kwargs) -> tuple["ClusterServer", Any]:
        """Rebuild a cluster from a durability directory: snapshot
        overlay + WAL tail replay.  See
        :func:`repro.cluster.durability.restore_cluster` (whose
        signature this forwards) for the recovery contract; returns
        ``(server, RecoveryReport)``."""
        from repro.cluster.durability import restore_cluster
        return restore_cluster(directory, simulator, rules, **kwargs)

    # -- rule lifecycle --------------------------------------------------------

    def placement_of(self, rule: Rule) -> PlacementPlan:
        """The two-phase placement a rule would get: its home key plus
        the foreign variables to mirror into the home shard.

        The footprint comes from the compiled plan — the same artifact
        the shard's database and engine index — plus the until
        variables and action devices; compilation here is cheap because
        the condition's dnf/key walks are memoized.  Raises
        :class:`~repro.errors.RuleError` when the *anchor* (actions +
        until) spans homes — only condition variables may."""
        plan = compile_condition(rule.condition)
        variables = set(plan.referenced_variables())
        until_variables: frozenset[str] = frozenset()
        if rule.until is not None:
            until_variables = frozenset(rule.until.referenced_variables())
            variables |= until_variables
        return self.router.placement_plan(
            variables, rule.devices(),
            until_variables=until_variables, rule_name=rule.name,
        )

    def home_of(self, rule: Rule) -> str:
        """The home key a rule would be placed under."""
        return self.placement_of(rule).home

    def register_rule(
        self, rule: Rule, *, validate: bool = True
    ) -> list[ConflictReport]:
        """Place and register a rule on the shard owning its home.

        Runs the same registration pipeline as `HomeServer` (access,
        consistency, conflict extraction, priority prompt); the conflict
        scope stays per-home because a rule's devices all live under its
        home key.  A rule whose condition reads other homes' variables
        registers all the same: each foreign variable is mirrored into
        the home shard — the bus subscription fans its writes out, and
        the current value is seeded from the owner shard so the rule
        evaluates against live context immediately.  ``validate=False``
        is the bulk-load path.
        """
        if rule.name in self._shard_of_rule:
            raise DuplicateRuleError(
                f"rule name already registered in the cluster: {rule.name!r}"
            )
        placement = self.placement_of(rule)
        home = placement.home
        index = self.router.shard_of_key(home)
        # Registration is an ingest barrier: pending batches settle
        # first, so a write coalesced while this rule did not exist can
        # never hide an intermediate value from it (a new until/duration
        # /contesting rule would retroactively invalidate the merge).
        self.bus.flush(shard=index)
        if placement.mirrors:
            self._install_mirrors(rule.name, placement.mirrors, index)
        try:
            reports = self.shards[index].register_rule(rule, validate=validate)
        except Exception:
            # Roll back the mirror plumbing a rejected registration
            # (consistency/access/duplicate) already installed.
            self._uninstall_mirrors(rule.name, index)
            raise
        self._shard_of_rule[rule.name] = index
        self._home_of_rule[rule.name] = home
        self._rules_of_home.setdefault(home, set()).add(rule.name)
        self._mirrors_of_rule[rule.name] = placement.mirrors
        for foreign in {self.router.key_of(v) for v in placement.mirrors}:
            self._remote_watchers.setdefault(foreign, {}) \
                .setdefault(index, set()).add(rule.name)
        self._home_spans.setdefault(rule.name, []).append(
            (self.simulator.now, home)
        )
        if self.durability is not None:
            # Rule churn changes what a WAL record means (epochs, rule
            # ids, placement); re-checkpoint eagerly so the snapshot
            # and its WAL always agree.
            self.durability.checkpoint()
        return reports

    def _install_mirrors(
        self, rule_name: str, mirrors: frozenset[str], index: int
    ) -> None:
        """Subscribe the home shard to a rule's foreign variables and
        seed each newly mirrored one with the owner's current value (the
        owner's pending batch settles first, so the seed is what a
        synchronous reader would observe).

        Foreign variables whose owning home happens to hash to the home
        shard need no mirror at all: the shard already owns the
        authoritative copy, and its own coalesce-safety proof covers
        the new reader — so they never enter the refcounts, the world's
        mirrored marks, or the bus routes."""
        remote = frozenset(
            variable for variable in mirrors
            if self.router.shard_of(variable) != index
        )
        for variable in self.shards[index].adopt_mirrors(rule_name, remote):
            owner = self.router.shard_of(variable)
            # Route first, then settle: a write published re-entrantly
            # *during* the owner's drain already fans out to the new
            # mirror, so the seed (read from the owner's settled world,
            # which such a write joins only at its own later drain) can
            # never leapfrog or shadow it — the mirror converges to the
            # authoritative value in apply order.
            self.bus.add_mirror_route(variable, index)
            self.bus.flush(shard=owner)
            value = self.shards[owner].variable_value(variable)
            if value is not None:
                # Seed before the rule registers: a fresh mirror has no
                # other reader on this shard, so nothing else wakes.
                self.shards[index].ingest(variable, value)

    def _uninstall_mirrors(self, rule_name: str, index: int) -> None:
        """Drop a rule's mirror refcounts and prune the bus routes whose
        last reader it was."""
        for variable in self.shards[index].release_mirrors(rule_name):
            self.bus.remove_mirror_route(variable, index)

    def remove_rule(self, name: str) -> Rule:
        index = self._shard_of_rule.pop(name, None)
        if index is None:
            raise UnknownRuleError(f"no rule named {name!r} in the cluster")
        self.bus.flush(shard=index)  # apply what the rule should still see
        members = self._rules_of_home.get(self._home_of_rule[name])
        if members is not None:
            members.discard(name)
        rule = self.shards[index].remove_rule(name)
        self._uninstall_mirrors(name, index)
        for foreign in {self.router.key_of(v) for v in
                        self._mirrors_of_rule.pop(name, frozenset())}:
            shards = self._remote_watchers.get(foreign)
            if shards is None:
                continue
            watchers = shards.get(index)
            if watchers is not None:
                watchers.discard(name)
                if not watchers:
                    del shards[index]
            if not shards:
                del self._remote_watchers[foreign]
        if self.durability is not None:
            self.durability.checkpoint()
        return rule

    def add_priority_order(self, order: PriorityOrder) -> PriorityOrder:
        """Route a priority order to the shard owning its device's home
        (after settling that shard's pending batch, so the new order
        only governs arbitration from this point on)."""
        index = self.router.shard_of(order.device_udn)
        self.bus.flush(shard=index)
        return self.shards[index].add_priority_order(order)

    # -- world-state feeds -----------------------------------------------------

    def set_variable_unit(self, variable: str, unit: str) -> None:
        """Declare a variable's unit, mirroring what `HomeServer` learns
        from UPnP discovery — ``"set"`` variables then accept the
        comma-joined string form on :meth:`ingest`."""
        self._variable_units[variable] = unit

    def ingest(self, variable: str, value: Any) -> None:
        """Publish one sensor reading onto the ingest bus (applied on the
        next drain; call :meth:`flush` or run the simulator to settle).
        Readings are unit-coerced exactly like `HomeServer.ingest`."""
        self.bus.publish(
            variable, coerce_reading(value, self._variable_units.get(variable))
        )

    def post_event(
        self, event_type: str, subject: str | None = None,
        *, home: str | None = None,
    ) -> None:
        """Publish an instantaneous event — scoped to one home's rules
        when ``home`` is given (a shard hosts several homes, and Alan
        returning to one apartment must not light the neighbours'
        halls), broadcast to every shard otherwise.

        A home-scoped event reaches the home's own rules *and* every
        cross-home rule mirroring that home's variables, wherever those
        watchers are homed — apartment 3's smoke event must wake the
        lobby's building rule.  Membership sets stay live (churn between
        publish and drain is honoured); when one shard hosts both
        groups they are joined through a read-through union."""
        if home is None:
            self.bus.publish_event(event_type, subject)
            return
        groups_by_shard: dict[int, list] = {}
        members = self._rules_of_home.get(home)
        if members is not None:
            groups_by_shard.setdefault(
                self.router.shard_of_key(home), []
            ).append(members)
        for shard_index, watchers in \
                self._remote_watchers.get(home, {}).items():
            groups_by_shard.setdefault(shard_index, []).append(watchers)
        for shard_index in sorted(groups_by_shard):
            groups = groups_by_shard[shard_index]
            only = groups[0] if len(groups) == 1 else _LiveUnion(groups)
            self.bus.publish_event(
                event_type, subject, shard=shard_index, only=only,
            )

    def flush(self) -> None:
        """Drain every shard's pending ingest batch immediately.

        On the process backend this is also the counter barrier: each
        worker settles its pipelined feeds and its accumulated batch
        counter deltas fold into the bus registry (the thread backend
        folds them synchronously at apply time)."""
        self.bus.flush()
        if self.backend == "process":
            registry = self.bus.registry
            for shard in self.shards:
                flips, touched = shard.barrier()
                if flips:
                    registry.counter("bus.atoms_flipped").inc(flips)
                if touched:
                    registry.counter("bus.clauses_touched").inc(touched)

    # -- introspection ---------------------------------------------------------

    def shard_of_rule(self, name: str) -> int:
        index = self._shard_of_rule.get(name)
        if index is None:
            raise UnknownRuleError(f"no rule named {name!r} in the cluster")
        return index

    def mirrors_of_rule(self, name: str) -> frozenset[str]:
        """The rule's *plan-level* mirror set: every condition variable
        owned by a foreign home.  Variables whose owning home happens to
        hash to the rule's own shard need no live mirror (the shard
        already owns them), so the bus/world plumbing can be a subset —
        :meth:`EngineShard.mirrors_of_rule` on the rule's shard reports
        the actually hosted set."""
        if name not in self._shard_of_rule:
            raise UnknownRuleError(f"no rule named {name!r} in the cluster")
        return self._mirrors_of_rule.get(name, frozenset())

    def rule_truth(self, name: str) -> bool:
        return self.shards[self.shard_of_rule(name)].rule_truth(name)

    def rule_state(self, name: str) -> RuleState:
        return self.shards[self.shard_of_rule(name)].rule_state(name)

    def holder_of(self, udn: str) -> tuple[str, ActionSpec] | None:
        return self.shards[self.router.shard_of(udn)].holder_of(udn)

    def _home_at(self, rule_name: str, when: float) -> str | None:
        """The home a rule name belonged to at a point in time (spans
        survive removal and name reuse across homes)."""
        spans = self._home_spans.get(rule_name)
        if not spans:
            return None
        owner = None
        for start, home in spans:
            if start > when:
                break
            owner = home
        return owner

    def trace(self, home: str | None = None) -> list[TraceEntry]:
        """Engine decisions, merged across shards in time order (ties
        broken by shard id, then per-shard order); ``home`` filters to
        one home's rules — an exact per-shard FIFO slice, since every
        rule of a home (cross-home rules included: they are attributed
        to the *anchor* home owning their devices) lives on that home's
        shard.  Entries of removed (or later re-registered) rules stay
        attributed to the home that owned the name when they were
        recorded."""
        tagged = [
            (entry.time, index, position, entry)
            for index, shard in enumerate(self.shards)
            for position, entry in enumerate(shard.trace())
        ]
        tagged.sort(key=lambda item: item[:3])
        entries = [entry for _, _, _, entry in tagged]
        if home is not None:
            entries = [
                entry for entry in entries
                if self._home_at(entry.rule, entry.time) == home
            ]
        return entries

    def stats(self) -> BusStats:
        return self.bus.stats

    def telemetry(self) -> dict:
        """The cluster's merged health snapshot, JSON-ready.

        ``shards`` holds one registry snapshot per shard (ingest latency
        percentiles, span-stage histograms, queue depth, tick/epoch/wheel
        /columnar counters, the recent-spans ring) tagged with its shard
        id; ``aggregate`` is their fold — counters and gauges summed,
        histograms merged bucket-for-bucket with percentiles recomputed;
        ``bus`` carries the cluster-wide ingest counters plus derived
        coalesce/mirror/batched-write rates.  With ``telemetry=False``
        the shard views are empty but the bus section still reports."""
        shard_snapshots = [
            snapshot
            for shard in self.shards
            if (snapshot := shard.telemetry_snapshot(
                queue_depth=self.bus.pending(shard.shard_id))) is not None
        ]
        bus = self.bus.registry.snapshot()
        published = bus["counters"].get("bus.published", 0)
        applied = bus["counters"].get("bus.applied", 0)
        bus["rates"] = {
            "coalesce": (
                bus["counters"].get("bus.coalesced", 0) / published
                if published else 0.0
            ),
            "mirror": (
                bus["counters"].get("bus.mirrored", 0) / published
                if published else 0.0
            ),
            "batched_write": (
                bus["counters"].get("bus.batched_writes", 0) / applied
                if applied else 0.0
            ),
        }
        return {
            "enabled": self.telemetry_enabled,
            "shards": shard_snapshots,
            "aggregate": merge_snapshots(shard_snapshots),
            "bus": bus,
        }

    def prometheus(self) -> str:
        """The cluster snapshot in Prometheus text exposition format:
        every shard's samples labelled ``shard="<id>"`` plus the bus's
        cluster-wide counters, one scrape-ready document."""
        snapshot = self.telemetry()
        parts = [
            render_prometheus(
                shard_snapshot,
                extra_labels={"shard": str(shard_snapshot["shard"])},
            )
            for shard_snapshot in snapshot["shards"]
        ]
        parts.append(render_prometheus(snapshot["bus"]))
        return "".join(parts)

    def rule_count(self) -> int:
        return len(self._shard_of_rule)

    def describe_shards(self) -> list[str]:
        """One summary line per shard (rules, hosted mirrors, pending
        queue depth)."""
        return [
            f"shard {shard.shard_id}: {shard.rule_count()} rules, "
            f"{len(shard.mirror_variables())} mirrors, "
            f"{self.bus.pending(shard.shard_id)} queued"
            for shard in self.shards
        ]

    def shutdown(self) -> None:
        """Stop the cluster.  Idempotent — a second call is a no-op.

        Order matters on the process backend: scheduled drains are
        cancelled first, then the durability plane closes (its WAL
        close/fsync RPCs must reach workers that are still alive), and
        only then are the shards stopped — which, for worker processes,
        joins them with a deadline and escalates to terminate/kill so no
        child is ever leaked."""
        if self._shutdown:
            return
        self._shutdown = True
        self.bus.shutdown()
        if self.durability is not None:
            self.durability.close()
        for shard in self.shards:
            shard.shutdown()
