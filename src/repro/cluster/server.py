"""The cluster facade: multi-home serving behind one `HomeServer`-shaped API.

A :class:`ClusterServer` owns a :class:`~repro.cluster.router.ShardRouter`,
N independent :class:`~repro.cluster.shard.EngineShard`\\ s and one
:class:`~repro.cluster.bus.IngestBus`, and mirrors the single-home
:class:`~repro.core.server.HomeServer` surface — ``register_rule``,
``remove_rule``, ``ingest``, ``post_event``, ``trace``, ``shutdown`` —
so application code written against one home scales to a fleet by
swapping the facade.

Placement: a rule lands on the shard owning its home key, derived from
the compiled plan's variable footprint
(:meth:`~repro.core.plan.CompiledPlan.referenced_variables`) plus its
until-condition variables and action devices.  Rules spanning homes are
rejected with a :class:`~repro.errors.RuleError` (cross-shard rule
placement is a recorded ROADMAP follow-on).

Ingestion: ``ingest``/``post_event`` publish to the bus, which applies
them on the simulator in per-shard FIFO batches; call :meth:`flush` (or
run the simulator) to settle.  With coalescing on, bursty repeated
writes collapse to their latest value wherever the owning shard proves
that safe.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.cluster.bus import BusStats, IngestBus
from repro.cluster.router import ShardRouter
from repro.cluster.shard import EngineShard
from repro.core.action import ActionSpec
from repro.core.conflict import ConflictReport
from repro.core.engine import DEFAULT_MAX_TRACE, PromptPolicy, RuleState, TraceEntry
from repro.core.plan import compile_condition
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.core.server import ConflictPolicy, coerce_reading
from repro.errors import DuplicateRuleError, UnknownRuleError
from repro.sim.events import Simulator


class ClusterServer:
    """Sharded multi-home rule serving with a batched async ingest bus."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        shard_count: int = 4,
        router: ShardRouter | None = None,
        dispatch: Callable[[ActionSpec], None] | None = None,
        coalesce: bool = True,
        batch: bool = True,
        drain_delay: float = 0.0,
        prompt_policy: PromptPolicy | None = None,
        conflict_policy: ConflictPolicy | None = None,
        prefer_intervals: bool = True,
        incremental: bool = True,
        shared: bool = True,
        wheel: bool = True,
        max_trace: int | None = DEFAULT_MAX_TRACE,
        clock_tick_period: float = 60.0,
    ) -> None:
        self.simulator = simulator
        self.router = router if router is not None else ShardRouter(shard_count)
        self.shards = [
            EngineShard(
                index,
                simulator,
                dispatch=dispatch,
                prompt_policy=prompt_policy,
                conflict_policy=conflict_policy,
                prefer_intervals=prefer_intervals,
                incremental=incremental,
                shared=shared,
                wheel=wheel,
                max_trace=max_trace,
                clock_tick_period=clock_tick_period,
            )
            for index in range(self.router.shard_count)
        ]
        self.bus = IngestBus(
            simulator, self.shards, self.router,
            coalesce=coalesce, batch=batch, drain_delay=drain_delay,
        )
        self._shard_of_rule: dict[str, int] = {}
        self._home_of_rule: dict[str, str] = {}
        self._variable_units: dict[str, str] = {}
        # Live membership sets handed to home-scoped events (see
        # IngestBus._Event.only); pruned on removal.
        self._rules_of_home: dict[str, set[str]] = {}
        # Trace attribution that survives removal *and* name reuse:
        # (registration time, home) spans per rule name — an entry
        # belongs to the home whose span covers its timestamp.
        self._home_spans: dict[str, list[tuple[float, str]]] = {}

    # -- rule lifecycle --------------------------------------------------------

    def home_of(self, rule: Rule) -> str:
        """The home key a rule would be placed under (raises
        :class:`~repro.errors.RuleError` for rules spanning homes).

        The footprint comes from the compiled plan — the same artifact
        the shard's database and engine index — plus the until
        variables and action devices; compilation here is cheap because
        the condition's dnf/key walks are memoized."""
        plan = compile_condition(rule.condition)
        variables = set(plan.referenced_variables())
        if rule.until is not None:
            variables |= rule.until.referenced_variables()
        return self.router.placement_key(
            variables, rule.devices(), rule_name=rule.name
        )

    def register_rule(
        self, rule: Rule, *, validate: bool = True
    ) -> list[ConflictReport]:
        """Place and register a rule on the shard owning its home.

        Runs the same registration pipeline as `HomeServer` (access,
        consistency, conflict extraction, priority prompt); the conflict
        scope is naturally per-home because every rule of a home lives
        on one shard.  ``validate=False`` is the bulk-load path.
        """
        if rule.name in self._shard_of_rule:
            raise DuplicateRuleError(
                f"rule name already registered in the cluster: {rule.name!r}"
            )
        home = self.home_of(rule)
        index = self.router.shard_of_key(home)
        # Registration is an ingest barrier: pending batches settle
        # first, so a write coalesced while this rule did not exist can
        # never hide an intermediate value from it (a new until/duration
        # /contesting rule would retroactively invalidate the merge).
        self.bus.flush(shard=index)
        reports = self.shards[index].register_rule(rule, validate=validate)
        self._shard_of_rule[rule.name] = index
        self._home_of_rule[rule.name] = home
        self._rules_of_home.setdefault(home, set()).add(rule.name)
        self._home_spans.setdefault(rule.name, []).append(
            (self.simulator.now, home)
        )
        return reports

    def remove_rule(self, name: str) -> Rule:
        index = self._shard_of_rule.pop(name, None)
        if index is None:
            raise UnknownRuleError(f"no rule named {name!r} in the cluster")
        self.bus.flush(shard=index)  # apply what the rule should still see
        members = self._rules_of_home.get(self._home_of_rule[name])
        if members is not None:
            members.discard(name)
        return self.shards[index].remove_rule(name)

    def add_priority_order(self, order: PriorityOrder) -> PriorityOrder:
        """Route a priority order to the shard owning its device's home
        (after settling that shard's pending batch, so the new order
        only governs arbitration from this point on)."""
        index = self.router.shard_of(order.device_udn)
        self.bus.flush(shard=index)
        return self.shards[index].add_priority_order(order)

    # -- world-state feeds -----------------------------------------------------

    def set_variable_unit(self, variable: str, unit: str) -> None:
        """Declare a variable's unit, mirroring what `HomeServer` learns
        from UPnP discovery — ``"set"`` variables then accept the
        comma-joined string form on :meth:`ingest`."""
        self._variable_units[variable] = unit

    def ingest(self, variable: str, value: Any) -> None:
        """Publish one sensor reading onto the ingest bus (applied on the
        next drain; call :meth:`flush` or run the simulator to settle).
        Readings are unit-coerced exactly like `HomeServer.ingest`."""
        self.bus.publish(
            variable, coerce_reading(value, self._variable_units.get(variable))
        )

    def post_event(
        self, event_type: str, subject: str | None = None,
        *, home: str | None = None,
    ) -> None:
        """Publish an instantaneous event — scoped to one home's rules
        when ``home`` is given (a shard hosts several homes, and Alan
        returning to one apartment must not light the neighbours'
        halls), broadcast to every shard otherwise."""
        if home is None:
            self.bus.publish_event(event_type, subject)
            return
        members = self._rules_of_home.get(home)
        if members is None:
            return  # no rules ever registered for this home: a no-op,
            # exactly like posting an unmatched event to a HomeServer
        self.bus.publish_event(
            event_type, subject,
            shard=self.router.shard_of_key(home),
            only=members,
        )

    def flush(self) -> None:
        """Drain every shard's pending ingest batch immediately."""
        self.bus.flush()

    # -- introspection ---------------------------------------------------------

    def shard_of_rule(self, name: str) -> int:
        index = self._shard_of_rule.get(name)
        if index is None:
            raise UnknownRuleError(f"no rule named {name!r} in the cluster")
        return index

    def rule_truth(self, name: str) -> bool:
        return self.shards[self.shard_of_rule(name)].engine.rule_truth(name)

    def rule_state(self, name: str) -> RuleState:
        return self.shards[self.shard_of_rule(name)].engine.rule_state(name)

    def holder_of(self, udn: str) -> tuple[str, ActionSpec] | None:
        return self.shards[self.router.shard_of(udn)].engine.holder_of(udn)

    def _home_at(self, rule_name: str, when: float) -> str | None:
        """The home a rule name belonged to at a point in time (spans
        survive removal and name reuse across homes)."""
        spans = self._home_spans.get(rule_name)
        if not spans:
            return None
        owner = None
        for start, home in spans:
            if start > when:
                break
            owner = home
        return owner

    def trace(self, home: str | None = None) -> list[TraceEntry]:
        """Engine decisions, merged across shards in time order (ties
        broken by shard id, then per-shard order); ``home`` filters to
        one home's rules — an exact per-shard FIFO slice, since a home
        never spans shards.  Entries of removed (or later re-registered)
        rules stay attributed to the home that owned the name when they
        were recorded."""
        tagged = [
            (entry.time, index, position, entry)
            for index, shard in enumerate(self.shards)
            for position, entry in enumerate(shard.engine.trace)
        ]
        tagged.sort(key=lambda item: item[:3])
        entries = [entry for _, _, _, entry in tagged]
        if home is not None:
            entries = [
                entry for entry in entries
                if self._home_at(entry.rule, entry.time) == home
            ]
        return entries

    def stats(self) -> BusStats:
        return self.bus.stats

    def rule_count(self) -> int:
        return len(self._shard_of_rule)

    def describe_shards(self) -> list[str]:
        """One summary line per shard (rules, pending queue depth)."""
        return [
            f"shard {shard.shard_id}: {len(shard.database)} rules, "
            f"{self.bus.pending(shard.shard_id)} queued"
            for shard in self.shards
        ]

    def shutdown(self) -> None:
        """Cancel clock ticks and scheduled drains on every shard."""
        self.bus.shutdown()
        for shard in self.shards:
            shard.shutdown()
