"""Cluster layer: sharded multi-home serving over the single-home core.

The ROADMAP's path from "one household" to "millions of users" starts
here: a consistent-hash :class:`ShardRouter` maps home-prefixed
variable ids onto N independent :class:`EngineShard`\\ s (each a full
database + incremental engine), an :class:`IngestBus` decouples sensor
ingestion from arbitration with per-shard FIFO batch drains and safe
write coalescing, and the :class:`ClusterServer` facade keeps the
single-home `HomeServer` API shape so applications scale by swapping
the facade.

The durability plane (:mod:`repro.cluster.durability`) adds crash
recovery: per-shard snapshots plus a write-ahead log of drained ingest
batches, restored via :meth:`ClusterServer.restore`.

The process plane (:mod:`repro.cluster.wire` +
:mod:`repro.cluster.worker`) moves shards out of process: a framed wire
protocol carries batches, barriers, mirror routes, and telemetry pulls
to per-core worker processes, each hosting one `EngineShard` behind a
:class:`ShardClient` proxy, selected via
``ClusterServer(backend="process")``.
"""

from repro.cluster.bus import BusStats, IngestBus
from repro.cluster.durability import (
    ALL_CRASH_SITES,
    DurabilityPlane,
    RecoveryReport,
    restore_cluster,
)
from repro.cluster.router import (
    PlacementPlan,
    ShardRouter,
    home_key,
    stable_hash,
)
from repro.cluster.server import ClusterServer
from repro.cluster.shard import EngineShard
from repro.cluster.wire import FrameReader, WireDecoder, WireEncoder
from repro.cluster.worker import ShardClient

__all__ = [
    "ALL_CRASH_SITES",
    "BusStats",
    "ClusterServer",
    "DurabilityPlane",
    "EngineShard",
    "FrameReader",
    "IngestBus",
    "PlacementPlan",
    "RecoveryReport",
    "ShardClient",
    "ShardRouter",
    "WireDecoder",
    "WireEncoder",
    "home_key",
    "restore_cluster",
    "stable_hash",
]
