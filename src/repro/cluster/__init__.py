"""Cluster layer: sharded multi-home serving over the single-home core.

The ROADMAP's path from "one household" to "millions of users" starts
here: a consistent-hash :class:`ShardRouter` maps home-prefixed
variable ids onto N independent :class:`EngineShard`\\ s (each a full
database + incremental engine), an :class:`IngestBus` decouples sensor
ingestion from arbitration with per-shard FIFO batch drains and safe
write coalescing, and the :class:`ClusterServer` facade keeps the
single-home `HomeServer` API shape so applications scale by swapping
the facade.

The durability plane (:mod:`repro.cluster.durability`) adds crash
recovery: per-shard snapshots plus a write-ahead log of drained ingest
batches, restored via :meth:`ClusterServer.restore`.
"""

from repro.cluster.bus import BusStats, IngestBus
from repro.cluster.durability import (
    ALL_CRASH_SITES,
    DurabilityPlane,
    RecoveryReport,
    restore_cluster,
)
from repro.cluster.router import (
    PlacementPlan,
    ShardRouter,
    home_key,
    stable_hash,
)
from repro.cluster.server import ClusterServer
from repro.cluster.shard import EngineShard

__all__ = [
    "ALL_CRASH_SITES",
    "BusStats",
    "ClusterServer",
    "DurabilityPlane",
    "EngineShard",
    "IngestBus",
    "PlacementPlan",
    "RecoveryReport",
    "ShardRouter",
    "home_key",
    "restore_cluster",
    "stable_hash",
]
