"""Cluster layer: sharded multi-home serving over the single-home core.

The ROADMAP's path from "one household" to "millions of users" starts
here: a consistent-hash :class:`ShardRouter` maps home-prefixed
variable ids onto N independent :class:`EngineShard`\\ s (each a full
database + incremental engine), an :class:`IngestBus` decouples sensor
ingestion from arbitration with per-shard FIFO batch drains and safe
write coalescing, and the :class:`ClusterServer` facade keeps the
single-home `HomeServer` API shape so applications scale by swapping
the facade.
"""

from repro.cluster.bus import BusStats, IngestBus
from repro.cluster.router import (
    PlacementPlan,
    ShardRouter,
    home_key,
    stable_hash,
)
from repro.cluster.server import ClusterServer
from repro.cluster.shard import EngineShard

__all__ = [
    "BusStats",
    "ClusterServer",
    "EngineShard",
    "IngestBus",
    "PlacementPlan",
    "ShardRouter",
    "home_key",
    "stable_hash",
]
