"""Batched asynchronous ingest bus.

Sensor events are *published* to per-shard FIFO queues and *applied*
later by a drain callback scheduled on the shared discrete-event
:class:`~repro.sim.events.Simulator` — ingestion is decoupled from
arbitration exactly as a production front door decouples accept from
process.  Three properties matter:

FIFO per shard
    A shard's queue preserves publish order across writes *and*
    instantaneous events, so the engine observes the same sequence a
    synchronous caller would have produced — the incremental/seed
    equivalence from PR 1 carries over to the cluster unchanged.

Batch drain
    The first publish to an idle shard schedules one drain; every
    further publish before it runs joins the same batch.  A burst of M
    events costs one scheduler round-trip instead of M.

Write coalescing
    A write whose variable matches the *tail* of the pending queue
    merges into that entry (latest value wins) — runs of consecutive
    writes from one chatty sensor collapse to their settled value.
    Only consecutive writes merge: skipping the intermediate values of
    an unbroken run can only suppress world states the synchronous
    path also visited, never combine one variable's stale value with
    another's fresh one (which batch-wide merging would, firing rules
    on states that never existed).  Even then a variable must be
    *coalesce-safe* per its owning shard
    (:meth:`~repro.cluster.shard.EngineShard.coalesce_safe`): no
    until-postconditions, no duration atoms, no contested devices among
    the readers.  Unsafe variables are applied write-for-write, so
    history-dependent semantics never observe a skipped value.  An
    instantaneous event breaks any run, so writes never merge across
    it.

Mirror routes (cross-shard rules)
    A rule homed on one shard may read variables owned by another home
    (see :meth:`~repro.cluster.router.ShardRouter.placement_plan`); the
    cluster registers a **mirror route** for each such variable.  A
    publish then fans the write out: the owner shard's queue first,
    then every subscribed shard's queue, so each shard observes its
    relevant writes in global publish order (per-shard FIFO is
    preserved *across* variables, which is what makes cluster traces
    match a merged-home oracle).  Mirrored variables are excluded from
    coalescing entirely — the owner shard cannot prove a skipped
    intermediate value harmless for rules it does not host, and that
    one value could be exactly the edge that fires a cross-home rule.

``batch=False`` turns the bus into a per-event dispatcher (one
simulator callback per publish; mirror fan-out happens at apply time) —
the ablation baseline benchmark A6 measures batching against.
"""

from __future__ import annotations

import warnings
from typing import Any, Collection, Sequence

from repro.cluster.router import ShardRouter
from repro.cluster.shard import EngineShard
from repro.obs.metrics import MetricsRegistry
from repro.sim.events import EventHandle, Simulator


class _Write:
    """A queued sensor write (mutable: coalescing updates ``value``)."""

    __slots__ = ("variable", "value")

    def __init__(self, variable: str, value: Any) -> None:
        self.variable = variable
        self.value = value


class _Event:
    """A queued instantaneous event (a coalescing barrier).

    ``only`` is a *live* rule-name collection (or None for unscoped):
    the publisher hands in its per-home membership set, so rule churn
    between publish and drain is reflected at apply time — matching the
    synchronous path, where churn always happens between applications.
    """

    __slots__ = ("event_type", "subject", "only")

    def __init__(
        self,
        event_type: str,
        subject: str | None,
        only: Collection[str] | None = None,
    ) -> None:
        self.event_type = event_type
        self.subject = subject
        self.only = only


class BusStats:
    """Observability counters for dashboards and the A6 benchmark.

    Since the telemetry PR this is a *view* over ``bus.<field>``
    counters in a :class:`~repro.obs.metrics.MetricsRegistry` — the
    historical attribute API (``stats.batches`` etc.) reads through
    unchanged, but the counters themselves live in the registry, where
    the Prometheus formatter and cluster aggregation see them and where
    they survive bus re-creation over re-registered shards (pass the old
    bus's ``registry`` to the new one) instead of silently resetting.

    Direct attribute mutation still works for legacy callers but is
    deprecated: the bus increments its registry counters directly.
    """

    FIELDS = (
        "published",        # writes accepted
        "events",           # instantaneous events accepted (per target shard)
        "coalesced",        # writes merged into a pending entry
        "applied",          # engine ingests actually performed
        "batches",          # drain callbacks that applied at least one entry
        "mirrored",         # mirror fan-outs (one per subscriber shard copy)
        # -- columnar batch observability (see repro.core.columnar) -----
        "batched_writes",   # writes applied through shard.ingest_batch
        "atoms_flipped",    # atom truth flips inside batched runs
        "clauses_touched",  # clause counter updates inside batched runs
    )

    __slots__ = ("registry",)

    def __init__(self, registry: MetricsRegistry | None = None,
                 **initial: int) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        for field, value in initial.items():
            if field not in self.FIELDS:
                raise TypeError(f"BusStats has no counter {field!r}")
            self.registry.counter(f"bus.{field}").value = value

    def describe(self) -> str:
        return " ".join(
            f"{field}={getattr(self, field)}" for field in self.FIELDS
        )


def _stat_property(field: str) -> property:
    name = "bus." + field

    def _get(self: BusStats) -> int:
        return self.registry.counter(name).value

    def _set(self: BusStats, value: int) -> None:
        warnings.warn(
            f"mutating BusStats.{field} directly is deprecated; "
            "increment the registry counter instead",
            DeprecationWarning, stacklevel=2,
        )
        self.registry.counter(name).value = value

    return property(_get, _set)


for _field in BusStats.FIELDS:
    setattr(BusStats, _field, _stat_property(_field))
del _field


class IngestBus:
    """Queues sensor events per shard and drains them in batches."""

    def __init__(
        self,
        simulator: Simulator,
        shards: Sequence[EngineShard],
        router: ShardRouter,
        *,
        coalesce: bool = True,
        batch: bool = True,
        drain_delay: float = 0.0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.simulator = simulator
        self.shards = list(shards)
        self.router = router
        self.coalesce = coalesce
        self.batch = batch
        self.drain_delay = drain_delay
        # The bus's counters live in a registry (passed in to survive bus
        # re-creation over re-registered shards); BusStats is a reading
        # view and the hot paths below increment bound counters directly.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = BusStats(self.registry)
        self._published = self.registry.counter("bus.published")
        self._events = self.registry.counter("bus.events")
        self._coalesced = self.registry.counter("bus.coalesced")
        self._applied = self.registry.counter("bus.applied")
        self._batches = self.registry.counter("bus.batches")
        self._mirrored = self.registry.counter("bus.mirrored")
        self._batched_writes = self.registry.counter("bus.batched_writes")
        self._atoms_flipped = self.registry.counter("bus.atoms_flipped")
        self._clauses_touched = self.registry.counter("bus.clauses_touched")
        count = len(self.shards)
        self._queues: list[list[_Write | _Event]] = [[] for _ in range(count)]
        self._drain_handles: list[EventHandle | None] = [None] * count
        self._closed = False
        # Preallocated drain scratch: detached queues are recycled per
        # shard and the consecutive-write run buffer is shared, so a
        # steady-state drain allocates no per-batch temporaries.
        self._spare_queues: list[list[_Write | _Event] | None] = \
            [None] * count
        self._run_scratch: list[tuple[str, Any]] = []
        # variable → coalesce-safety, valid for the recorded shard epoch.
        self._safety_epochs: list[int] = [-1] * count
        self._safety: list[dict[str, bool]] = [{} for _ in range(count)]
        # variable → sorted subscriber shard indices (cross-shard rules
        # hosting a mirror of the variable); maintained by the cluster
        # facade as rules register and are removed.
        self._mirror_routes: dict[str, tuple[int, ...]] = {}
        # Durability hook (None when the cluster runs ephemeral): every
        # detached drain batch is logged append-before-apply, and
        # applied_counts[i] counts the entries *actually applied* to
        # shard i — the durable input prefix recovery re-feeds from.
        self._durability = None
        self.applied_counts: list[int] = [0] * count

    # -- durability ------------------------------------------------------------

    def attach_durability(self, plane) -> None:
        """Bind a :class:`~repro.cluster.durability.DurabilityPlane`: each
        drained batch is WAL-logged before it is applied.  Requires the
        batched drain path — per-event dispatch (``batch=False``) applies
        straight off the simulator with no batch boundary to log."""
        if not self.batch:
            raise ValueError(
                "durability requires the batched bus (batch=True)"
            )
        self._durability = plane

    def apply_entries(self, index: int, entries: Sequence) -> int:
        """Replay one WAL batch through the normal apply machinery.

        ``entries`` are decoded WAL entries — ``["w", variable, value]``
        or ``["e", event_type, subject, only]`` — applied with the exact
        drain semantics (consecutive writes as one batched run, events
        as barriers), so replay reproduces the counter deltas and
        evaluation order of the original drain.  Returns the number of
        entries applied."""
        run: list[tuple[str, Any]] = []
        for entry in entries:
            if entry[0] == "w":
                run.append((entry[1], entry[2]))
                continue
            self._flush_run(index, run)
            self._apply(index, _Event(entry[1], entry[2], entry[3]))
        self._flush_run(index, run)
        return len(entries)

    # -- mirror routes ---------------------------------------------------------

    def add_mirror_route(self, variable: str, shard: int) -> None:
        """Subscribe a shard to writes of a variable it does not own."""
        targets = set(self._mirror_routes.get(variable, ()))
        targets.add(shard)
        self._mirror_routes[variable] = tuple(sorted(targets))

    def remove_mirror_route(self, variable: str, shard: int) -> None:
        """Drop a shard's mirror subscription (no-op when absent)."""
        targets = set(self._mirror_routes.get(variable, ()))
        targets.discard(shard)
        if targets:
            self._mirror_routes[variable] = tuple(sorted(targets))
        else:
            self._mirror_routes.pop(variable, None)

    def mirror_routes_of(self, variable: str) -> tuple[int, ...]:
        """Subscriber shards of one variable (introspection/tests)."""
        return self._mirror_routes.get(variable, ())

    def mirror_route_count(self) -> int:
        """Number of variables with at least one mirror subscription."""
        return len(self._mirror_routes)

    # -- publishing ------------------------------------------------------------

    def publish(self, variable: str, value: Any) -> int:
        """Queue one sensor write; returns the owning shard index.

        A write to a mirrored variable is enqueued to the owner shard
        first and then to every subscriber shard, so each shard's FIFO
        queue carries its relevant writes in global publish order."""
        index = self.router.shard_of(variable)
        self._published.inc()
        if not self.batch:
            self._schedule_single(index, _Write(variable, value))
            return index
        routes = self._mirror_routes.get(variable)
        if self.coalesce and not routes:
            queue = self._queues[index]
            tail = queue[-1] if queue else None
            if (
                isinstance(tail, _Write)
                and tail.variable == variable
                and self._coalesce_safe(index, variable)
            ):
                tail.value = value
                self._coalesced.inc()
                return index
        self._queues[index].append(_Write(variable, value))
        self._schedule_drain(index)
        if routes:
            for target in routes:
                if target == index:
                    continue
                self._mirrored.inc()
                self._queues[target].append(_Write(variable, value))
                self._schedule_drain(target)
        return index

    def publish_event(
        self,
        event_type: str,
        subject: str | None = None,
        *,
        shard: int | None = None,
        only: Collection[str] | None = None,
    ) -> None:
        """Queue an instantaneous event for one shard (optionally scoped
        to the ``only`` rule names) or broadcast to all shards (a
        home-less event — e.g. a whole-building alarm — must reach every
        shard's rules)."""
        targets = range(len(self.shards)) if shard is None else (shard,)
        for index in targets:
            self._events.inc()
            entry = _Event(event_type, subject, only)
            if not self.batch:
                self._schedule_single(index, entry)
                continue
            # The event becomes the queue tail, so it naturally breaks
            # any coalescible run of writes.
            self._queues[index].append(entry)
            self._schedule_drain(index)

    # -- draining --------------------------------------------------------------

    def pending(self, shard: int) -> int:
        """Entries queued but not yet applied for one shard."""
        return len(self._queues[shard])

    def flush(self, shard: int | None = None) -> None:
        """Apply pending batches immediately (all shards by default)."""
        targets = range(len(self.shards)) if shard is None else (shard,)
        for index in targets:
            handle = self._drain_handles[index]
            if handle is not None:
                handle.cancel()
                self._drain_handles[index] = None
            self._drain(index)

    def shutdown(self) -> None:
        """Cancel scheduled drains; queued entries are dropped — and so
        are per-event (``batch=False``) applies already sitting on the
        simulator, which the closed flag intercepts."""
        self._closed = True
        for index, handle in enumerate(self._drain_handles):
            if handle is not None:
                handle.cancel()
                self._drain_handles[index] = None
            self._queues[index].clear()

    def _schedule_drain(self, index: int) -> None:
        if self._drain_handles[index] is None:
            self._drain_handles[index] = self.simulator.call_after(
                self.drain_delay, lambda: self._run_drain(index)
            )

    def _run_drain(self, index: int) -> None:
        self._drain_handles[index] = None
        self._drain(index)

    def _drain(self, index: int) -> None:
        queue = self._queues[index]
        if not queue:
            return
        telemetry = getattr(self.shards[index], "telemetry", None)
        spans = (
            telemetry.spans
            if telemetry is not None and telemetry.enabled else None
        )
        token = (
            spans.span_begin("drain", size=len(queue))
            if spans is not None else None
        )
        # Detach before applying: ingests can publish follow-up events
        # re-entrantly; those join a fresh batch with a fresh drain.
        # The detached list is recycled as the shard's next queue and
        # the write-run buffer is detached scratch (re-entrant drains
        # simply fall back to fresh lists), so steady-state drains
        # allocate no per-batch temporaries.
        spare = self._spare_queues[index]
        self._spare_queues[index] = None
        self._queues[index] = spare if spare is not None else []
        self._batches.inc()
        plane = self._durability
        if plane is not None:
            # Append-before-apply: once the record is on disk the batch
            # is recoverable no matter where the apply loop dies.
            plane.log_batch(index, self.shards[index].epoch, queue)
        run = self._run_scratch
        self._run_scratch = []
        for entry in queue:
            if plane is not None:
                plane.fire("drain-apply")
            if isinstance(entry, _Write):
                # Consecutive writes drain as one batched run; an event
                # is a barrier (it must observe the writes before it).
                run.append((entry.variable, entry.value))
                continue
            self._flush_run(index, run)
            self._apply(index, entry)
        self._flush_run(index, run)
        queue.clear()
        self._spare_queues[index] = queue
        self._run_scratch = run
        if token is not None:
            spans.span_end(token)

    def _flush_run(self, index: int,
                   run: list[tuple[str, Any]]) -> None:
        """Apply a run of consecutive writes; singletons take the plain
        ingest path, longer runs the shard's batch entry point (same
        per-event semantics, vectorized hot path + batch counters)."""
        if not run:
            return
        if self._closed:
            run.clear()
            return
        shard = self.shards[index]
        if len(run) == 1:
            shard.ingest(*run[0])
            self._applied.inc()
            self.applied_counts[index] += 1
        else:
            flips, touched = shard.ingest_batch(run)
            count = len(run)
            self._applied.inc(count)
            self.applied_counts[index] += count
            self._batched_writes.inc(count)
            self._atoms_flipped.inc(flips)
            self._clauses_touched.inc(touched)
        run.clear()

    def _schedule_single(self, index: int, entry: _Write | _Event) -> None:
        """Per-event dispatch (``batch=False``): one callback per entry.
        FIFO still holds — the simulator breaks time ties by insertion
        order."""
        self.simulator.call_after(
            self.drain_delay, lambda: self._apply_single(index, entry)
        )

    def _apply_single(self, index: int, entry: _Write | _Event) -> None:
        """Apply one per-event entry; writes fan out to the variable's
        mirror subscribers at apply time (owner first), so routes added
        or removed between publish and apply are honoured."""
        self._apply(index, entry)
        if self._closed or not isinstance(entry, _Write):
            return
        for target in self._mirror_routes.get(entry.variable, ()):
            if target != index:
                self._mirrored.inc()
                self._apply(target, entry)

    def _apply(self, index: int, entry: _Write | _Event) -> None:
        if self._closed:
            return
        shard = self.shards[index]
        if isinstance(entry, _Write):
            shard.ingest(entry.variable, entry.value)
            self._applied.inc()
        else:
            shard.post_event(entry.event_type, entry.subject,
                             only=entry.only)
        self.applied_counts[index] += 1

    def _coalesce_safe(self, index: int, variable: str) -> bool:
        shard = self.shards[index]
        if self._safety_epochs[index] != shard.epoch:
            self._safety_epochs[index] = shard.epoch
            self._safety[index] = {}
        cache = self._safety[index]
        safe = cache.get(variable)
        if safe is None:
            safe = shard.coalesce_safe(variable)
            cache[variable] = safe
        return safe
