"""Batched asynchronous ingest bus.

Sensor events are *published* to per-shard FIFO queues and *applied*
later by a drain callback scheduled on the shared discrete-event
:class:`~repro.sim.events.Simulator` — ingestion is decoupled from
arbitration exactly as a production front door decouples accept from
process.  Three properties matter:

FIFO per shard
    A shard's queue preserves publish order across writes *and*
    instantaneous events, so the engine observes the same sequence a
    synchronous caller would have produced — the incremental/seed
    equivalence from PR 1 carries over to the cluster unchanged.

Batch drain
    The first publish to an idle shard schedules one drain; every
    further publish before it runs joins the same batch.  A burst of M
    events costs one scheduler round-trip instead of M.

Write coalescing
    A write whose variable matches the *tail* of the pending queue
    merges into that entry (latest value wins) — runs of consecutive
    writes from one chatty sensor collapse to their settled value.
    Only consecutive writes merge: skipping the intermediate values of
    an unbroken run can only suppress world states the synchronous
    path also visited, never combine one variable's stale value with
    another's fresh one (which batch-wide merging would, firing rules
    on states that never existed).  Even then a variable must be
    *coalesce-safe* per its owning shard
    (:meth:`~repro.cluster.shard.EngineShard.coalesce_safe`): no
    until-postconditions, no duration atoms, no contested devices among
    the readers.  Unsafe variables are applied write-for-write, so
    history-dependent semantics never observe a skipped value.  An
    instantaneous event breaks any run, so writes never merge across
    it.

Mirror routes (cross-shard rules)
    A rule homed on one shard may read variables owned by another home
    (see :meth:`~repro.cluster.router.ShardRouter.placement_plan`); the
    cluster registers a **mirror route** for each such variable.  A
    publish then fans the write out: the owner shard's queue first,
    then every subscribed shard's queue, so each shard observes its
    relevant writes in global publish order (per-shard FIFO is
    preserved *across* variables, which is what makes cluster traces
    match a merged-home oracle).  Mirrored variables are excluded from
    coalescing entirely — the owner shard cannot prove a skipped
    intermediate value harmless for rules it does not host, and that
    one value could be exactly the edge that fires a cross-home rule.

``batch=False`` turns the bus into a per-event dispatcher (one
simulator callback per publish; mirror fan-out happens at apply time) —
the ablation baseline benchmark A6 measures batching against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Collection, Sequence

from repro.cluster.router import ShardRouter
from repro.cluster.shard import EngineShard
from repro.sim.events import EventHandle, Simulator


class _Write:
    """A queued sensor write (mutable: coalescing updates ``value``)."""

    __slots__ = ("variable", "value")

    def __init__(self, variable: str, value: Any) -> None:
        self.variable = variable
        self.value = value


class _Event:
    """A queued instantaneous event (a coalescing barrier).

    ``only`` is a *live* rule-name collection (or None for unscoped):
    the publisher hands in its per-home membership set, so rule churn
    between publish and drain is reflected at apply time — matching the
    synchronous path, where churn always happens between applications.
    """

    __slots__ = ("event_type", "subject", "only")

    def __init__(
        self,
        event_type: str,
        subject: str | None,
        only: Collection[str] | None = None,
    ) -> None:
        self.event_type = event_type
        self.subject = subject
        self.only = only


@dataclass
class BusStats:
    """Observability counters for dashboards and the A6 benchmark."""

    published: int = 0   # writes accepted
    events: int = 0      # instantaneous events accepted (per target shard)
    coalesced: int = 0   # writes merged into a pending entry
    applied: int = 0     # engine ingests actually performed
    batches: int = 0     # drain callbacks that applied at least one entry
    mirrored: int = 0    # mirror fan-outs (one per subscriber shard copy)
    # -- columnar batch observability (see repro.core.columnar) ---------
    batched_writes: int = 0   # writes applied through shard.ingest_batch
    atoms_flipped: int = 0    # atom truth flips inside batched runs
    clauses_touched: int = 0  # clause counter updates inside batched runs

    def describe(self) -> str:
        return (
            f"published={self.published} events={self.events} "
            f"coalesced={self.coalesced} applied={self.applied} "
            f"batches={self.batches} mirrored={self.mirrored} "
            f"batched_writes={self.batched_writes} "
            f"atoms_flipped={self.atoms_flipped} "
            f"clauses_touched={self.clauses_touched}"
        )


class IngestBus:
    """Queues sensor events per shard and drains them in batches."""

    def __init__(
        self,
        simulator: Simulator,
        shards: Sequence[EngineShard],
        router: ShardRouter,
        *,
        coalesce: bool = True,
        batch: bool = True,
        drain_delay: float = 0.0,
    ) -> None:
        self.simulator = simulator
        self.shards = list(shards)
        self.router = router
        self.coalesce = coalesce
        self.batch = batch
        self.drain_delay = drain_delay
        self.stats = BusStats()
        count = len(self.shards)
        self._queues: list[list[_Write | _Event]] = [[] for _ in range(count)]
        self._drain_handles: list[EventHandle | None] = [None] * count
        self._closed = False
        # Preallocated drain scratch: detached queues are recycled per
        # shard and the consecutive-write run buffer is shared, so a
        # steady-state drain allocates no per-batch temporaries.
        self._spare_queues: list[list[_Write | _Event] | None] = \
            [None] * count
        self._run_scratch: list[tuple[str, Any]] = []
        # variable → coalesce-safety, valid for the recorded shard epoch.
        self._safety_epochs: list[int] = [-1] * count
        self._safety: list[dict[str, bool]] = [{} for _ in range(count)]
        # variable → sorted subscriber shard indices (cross-shard rules
        # hosting a mirror of the variable); maintained by the cluster
        # facade as rules register and are removed.
        self._mirror_routes: dict[str, tuple[int, ...]] = {}

    # -- mirror routes ---------------------------------------------------------

    def add_mirror_route(self, variable: str, shard: int) -> None:
        """Subscribe a shard to writes of a variable it does not own."""
        targets = set(self._mirror_routes.get(variable, ()))
        targets.add(shard)
        self._mirror_routes[variable] = tuple(sorted(targets))

    def remove_mirror_route(self, variable: str, shard: int) -> None:
        """Drop a shard's mirror subscription (no-op when absent)."""
        targets = set(self._mirror_routes.get(variable, ()))
        targets.discard(shard)
        if targets:
            self._mirror_routes[variable] = tuple(sorted(targets))
        else:
            self._mirror_routes.pop(variable, None)

    def mirror_routes_of(self, variable: str) -> tuple[int, ...]:
        """Subscriber shards of one variable (introspection/tests)."""
        return self._mirror_routes.get(variable, ())

    def mirror_route_count(self) -> int:
        """Number of variables with at least one mirror subscription."""
        return len(self._mirror_routes)

    # -- publishing ------------------------------------------------------------

    def publish(self, variable: str, value: Any) -> int:
        """Queue one sensor write; returns the owning shard index.

        A write to a mirrored variable is enqueued to the owner shard
        first and then to every subscriber shard, so each shard's FIFO
        queue carries its relevant writes in global publish order."""
        index = self.router.shard_of(variable)
        self.stats.published += 1
        if not self.batch:
            self._schedule_single(index, _Write(variable, value))
            return index
        routes = self._mirror_routes.get(variable)
        if self.coalesce and not routes:
            queue = self._queues[index]
            tail = queue[-1] if queue else None
            if (
                isinstance(tail, _Write)
                and tail.variable == variable
                and self._coalesce_safe(index, variable)
            ):
                tail.value = value
                self.stats.coalesced += 1
                return index
        self._queues[index].append(_Write(variable, value))
        self._schedule_drain(index)
        if routes:
            for target in routes:
                if target == index:
                    continue
                self.stats.mirrored += 1
                self._queues[target].append(_Write(variable, value))
                self._schedule_drain(target)
        return index

    def publish_event(
        self,
        event_type: str,
        subject: str | None = None,
        *,
        shard: int | None = None,
        only: Collection[str] | None = None,
    ) -> None:
        """Queue an instantaneous event for one shard (optionally scoped
        to the ``only`` rule names) or broadcast to all shards (a
        home-less event — e.g. a whole-building alarm — must reach every
        shard's rules)."""
        targets = range(len(self.shards)) if shard is None else (shard,)
        for index in targets:
            self.stats.events += 1
            entry = _Event(event_type, subject, only)
            if not self.batch:
                self._schedule_single(index, entry)
                continue
            # The event becomes the queue tail, so it naturally breaks
            # any coalescible run of writes.
            self._queues[index].append(entry)
            self._schedule_drain(index)

    # -- draining --------------------------------------------------------------

    def pending(self, shard: int) -> int:
        """Entries queued but not yet applied for one shard."""
        return len(self._queues[shard])

    def flush(self, shard: int | None = None) -> None:
        """Apply pending batches immediately (all shards by default)."""
        targets = range(len(self.shards)) if shard is None else (shard,)
        for index in targets:
            handle = self._drain_handles[index]
            if handle is not None:
                handle.cancel()
                self._drain_handles[index] = None
            self._drain(index)

    def shutdown(self) -> None:
        """Cancel scheduled drains; queued entries are dropped — and so
        are per-event (``batch=False``) applies already sitting on the
        simulator, which the closed flag intercepts."""
        self._closed = True
        for index, handle in enumerate(self._drain_handles):
            if handle is not None:
                handle.cancel()
                self._drain_handles[index] = None
            self._queues[index].clear()

    def _schedule_drain(self, index: int) -> None:
        if self._drain_handles[index] is None:
            self._drain_handles[index] = self.simulator.call_after(
                self.drain_delay, lambda: self._run_drain(index)
            )

    def _run_drain(self, index: int) -> None:
        self._drain_handles[index] = None
        self._drain(index)

    def _drain(self, index: int) -> None:
        queue = self._queues[index]
        if not queue:
            return
        # Detach before applying: ingests can publish follow-up events
        # re-entrantly; those join a fresh batch with a fresh drain.
        # The detached list is recycled as the shard's next queue and
        # the write-run buffer is detached scratch (re-entrant drains
        # simply fall back to fresh lists), so steady-state drains
        # allocate no per-batch temporaries.
        spare = self._spare_queues[index]
        self._spare_queues[index] = None
        self._queues[index] = spare if spare is not None else []
        self.stats.batches += 1
        shard = self.shards[index]
        run = self._run_scratch
        self._run_scratch = []
        for entry in queue:
            if isinstance(entry, _Write):
                # Consecutive writes drain as one batched run; an event
                # is a barrier (it must observe the writes before it).
                run.append((entry.variable, entry.value))
                continue
            self._flush_run(shard, run)
            self._apply(shard, entry)
        self._flush_run(shard, run)
        queue.clear()
        self._spare_queues[index] = queue
        self._run_scratch = run

    def _flush_run(self, shard: EngineShard,
                   run: list[tuple[str, Any]]) -> None:
        """Apply a run of consecutive writes; singletons take the plain
        ingest path, longer runs the shard's batch entry point (same
        per-event semantics, vectorized hot path + batch counters)."""
        if not run:
            return
        if self._closed:
            run.clear()
            return
        if len(run) == 1:
            shard.ingest(*run[0])
            self.stats.applied += 1
        else:
            flips, touched = shard.ingest_batch(run)
            count = len(run)
            self.stats.applied += count
            self.stats.batched_writes += count
            self.stats.atoms_flipped += flips
            self.stats.clauses_touched += touched
        run.clear()

    def _schedule_single(self, index: int, entry: _Write | _Event) -> None:
        """Per-event dispatch (``batch=False``): one callback per entry.
        FIFO still holds — the simulator breaks time ties by insertion
        order."""
        self.simulator.call_after(
            self.drain_delay, lambda: self._apply_single(index, entry)
        )

    def _apply_single(self, index: int, entry: _Write | _Event) -> None:
        """Apply one per-event entry; writes fan out to the variable's
        mirror subscribers at apply time (owner first), so routes added
        or removed between publish and apply are honoured."""
        self._apply(self.shards[index], entry)
        if self._closed or not isinstance(entry, _Write):
            return
        for target in self._mirror_routes.get(entry.variable, ()):
            if target != index:
                self.stats.mirrored += 1
                self._apply(self.shards[target], entry)

    def _apply(self, shard: EngineShard, entry: _Write | _Event) -> None:
        if self._closed:
            return
        if isinstance(entry, _Write):
            shard.ingest(entry.variable, entry.value)
            self.stats.applied += 1
        else:
            shard.post_event(entry.event_type, entry.subject,
                             only=entry.only)

    def _coalesce_safe(self, index: int, variable: str) -> bool:
        shard = self.shards[index]
        if self._safety_epochs[index] != shard.epoch:
            self._safety_epochs[index] = shard.epoch
            self._safety[index] = {}
        cache = self._safety[index]
        safe = cache.get(variable)
        if safe is None:
            safe = shard.coalesce_safe(variable)
            cache[variable] = safe
        return safe
