"""Framed wire protocol between the cluster parent and shard workers.

A connection is a byte stream of frames, each ``[u32 len][u8 type]``
followed by ``len`` payload bytes (length counts the payload only) —
the same length-prefixed discipline as the WAL framing in
:mod:`repro.support.wal`, minus the checksum: the socket is a reliable
stream, so corruption detection buys nothing and the 5-byte header
keeps hot batches cheap.

Frame types split by payload codec:

* **Pickled batch payloads** — the ingest hot path.  Batch rows intern
  their variable names through a per-connection key table
  (:class:`WireEncoder`/:class:`WireDecoder`) so a steady-state batch
  sends small integers, not repeated strings; new names ride along as
  ``defs`` in the frame that first uses them.  The payload itself is a
  pickle, not JSON: protocol-5 pickling of (int, float) rows runs ~4x
  faster than JSON float formatting, which would otherwise dominate
  the codec budget (benchmark A12 pins codec ≤15% of batch apply).
* **JSON payloads** — events and all plain-data calls: rare control
  traffic where a self-describing text payload aids debugging.
* **Pickled payloads** — calls that carry rich objects (``Rule``,
  ``PriorityOrder``, ``ConflictReport`` lists, exceptions).
* **Raw payloads** — pre-encoded WAL record frames forwarded verbatim.

Pickled frames are parent↔worker within one trust domain — the
connection is a private ``socketpair`` inherited at fork, never a
listening socket — the same trade the snapshot plane already makes.

One-way frames (BATCH, EVENT, ACTION, WAL) are pipelined with no
acknowledgement; the stream's FIFO order guarantees any later CALL on
the same connection observes their effects.  CALL/CALL_P carry a
request id echoed by the matching RESULT/RESULT_P/ERROR.

Every time-bearing frame carries the parent simulator's ``now`` so the
worker's private clock can catch up (firing its grid-snapped ticks in
order) before the payload is applied — see
:class:`repro.cluster.worker.WorkerHost` for the handshake.

Malformed input — bad length prefix, oversized frame, unknown type,
truncated stream, undecodable payload, or a key-table id the
connection never defined — raises :class:`repro.errors.WireError`.
"""

from __future__ import annotations

import json
import pickle
import struct
from typing import Any, Iterator, Sequence

from repro.errors import WireError

_HEADER = struct.Struct("<IB")

HEADER_SIZE = _HEADER.size

#: Hard ceiling on a single frame's payload; a length prefix beyond it
#: means a desynchronized or corrupt stream, not a big batch.
MAX_FRAME = 64 * 1024 * 1024

# -- frame types ---------------------------------------------------------------

HELLO = 1        # parent → worker: pickled handshake config
HELLO_ACK = 2    # worker → parent: JSON [shard_id, pid]
BATCH = 3        # parent → worker, one-way: pickled (t, defs, keys, values)
EVENT = 4        # parent → worker, one-way: JSON [t, event_type, subject, only]
CALL = 5         # parent → worker: JSON [req_id, method, t, args]
CALL_P = 6       # parent → worker: pickled (req_id, method, t, args, kwargs)
RESULT = 7       # worker → parent: JSON [req_id, value]
RESULT_P = 8     # worker → parent: pickled (req_id, value)
ERROR = 9        # worker → parent: pickled (req_id, exception, traceback_text)
ACTION = 10      # worker → parent, one-way: pickled ActionSpec
WAL = 11         # parent → worker, one-way: raw encoded WAL record bytes
BYE = 12         # parent → worker: empty; worker closes WAL and exits

FRAME_NAMES = {
    HELLO: "HELLO", HELLO_ACK: "HELLO_ACK", BATCH: "BATCH", EVENT: "EVENT",
    CALL: "CALL", CALL_P: "CALL_P", RESULT: "RESULT", RESULT_P: "RESULT_P",
    ERROR: "ERROR", ACTION: "ACTION", WAL: "WAL", BYE: "BYE",
}

_KNOWN_TYPES = frozenset(FRAME_NAMES)


# -- framing -------------------------------------------------------------------

def encode_frame(frame_type: int, payload: bytes = b"") -> bytes:
    if frame_type not in _KNOWN_TYPES:
        raise WireError(f"cannot encode unknown frame type {frame_type}")
    if len(payload) > MAX_FRAME:
        raise WireError(
            f"{FRAME_NAMES[frame_type]} payload of {len(payload)} bytes "
            f"exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _HEADER.pack(len(payload), frame_type) + payload


def decode_header(header: bytes) -> tuple[int, int]:
    """``(payload_length, frame_type)`` from a 5-byte header, validated."""
    if len(header) != HEADER_SIZE:
        raise WireError(
            f"truncated frame header: {len(header)} of {HEADER_SIZE} bytes"
        )
    length, frame_type = _HEADER.unpack(header)
    if frame_type not in _KNOWN_TYPES:
        raise WireError(f"unknown frame type {frame_type}")
    if length > MAX_FRAME:
        raise WireError(
            f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME}); "
            "stream is desynchronized"
        )
    return length, frame_type


class FrameReader:
    """Incremental frame splitter over an arbitrary chunking of the
    byte stream (the synchronous twin of the worker's
    ``readexactly`` loop; the parent's blocking receive path and the
    fuzz tests share it)."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def frames(self) -> Iterator[tuple[int, bytes]]:
        """Yield every complete ``(frame_type, payload)`` buffered so
        far, leaving any partial frame for the next :meth:`feed`."""
        while len(self._buffer) >= HEADER_SIZE:
            length, frame_type = decode_header(bytes(self._buffer[:HEADER_SIZE]))
            end = HEADER_SIZE + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[HEADER_SIZE:end])
            del self._buffer[:end]
            yield frame_type, payload

    def at_eof(self) -> None:
        """Call when the stream closes: leftover bytes mean the last
        frame was cut short."""
        if self._buffer:
            raise WireError(
                f"stream ended mid-frame with {len(self._buffer)} "
                "unconsumed bytes"
            )


# -- value tagging -------------------------------------------------------------

def encode_value(value: Any) -> Any:
    """Tag the one non-JSON value the ingest path produces (frozenset
    readings) so decode round-trips the type.  Shared with the WAL
    entry codec in :mod:`repro.cluster.durability`."""
    if isinstance(value, frozenset):
        return {"set": sorted(value)}
    return value


def decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "set" in value:
        return frozenset(value["set"])
    return value


# -- payload codecs ------------------------------------------------------------

def _dump_json(obj: Any) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def _load_json(payload: bytes) -> Any:
    try:
        return json.loads(payload)
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"undecodable JSON payload: {exc}") from exc


def encode_pickled(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def decode_pickled(payload: bytes) -> Any:
    try:
        return pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of types
        raise WireError(f"undecodable pickled payload: {exc}") from exc


def encode_call(req_id: int, method: str, t: float, args: Sequence) -> bytes:
    return encode_frame(CALL, _dump_json([req_id, method, t, list(args)]))


def decode_call(payload: bytes) -> tuple[int, str, float, list]:
    req_id, method, t, args = _load_json(payload)
    return req_id, method, t, args


def encode_call_pickled(
    req_id: int, method: str, t: float, args: Sequence, kwargs: dict
) -> bytes:
    return encode_frame(
        CALL_P, encode_pickled((req_id, method, t, list(args), kwargs))
    )


def encode_result(req_id: int, value: Any) -> bytes:
    return encode_frame(RESULT, _dump_json([req_id, value]))


def decode_result(payload: bytes) -> tuple[int, Any]:
    req_id, value = _load_json(payload)
    return req_id, value


def encode_result_pickled(req_id: int, value: Any) -> bytes:
    return encode_frame(RESULT_P, encode_pickled((req_id, value)))


def encode_error(req_id: int, exception: BaseException, tb_text: str) -> bytes:
    try:
        payload = encode_pickled((req_id, exception, tb_text))
    except Exception:
        # An unpicklable exception must still surface typed-ish: ship a
        # WireError carrying its repr rather than wedging the reply.
        payload = encode_pickled(
            (req_id, WireError(f"unpicklable worker exception: "
                               f"{exception!r}"), tb_text)
        )
    return encode_frame(ERROR, payload)


# -- interned batch/event codec ------------------------------------------------

class WireEncoder:
    """Parent-side batch/event encoder with a per-connection key table.

    Variable names are interned: the first batch naming a variable
    carries a ``(id, name)`` definition, every later row sends the
    integer id.  :meth:`reset` restarts the table for a reconnect (the
    fresh decoder on the other end starts empty too).

    The payload is a protocol-5 pickle of ``(t, defs, keys, values)``
    with keys and values as parallel flat lists: values ship natively
    (no frozenset tagging needed) and homogeneous int/float lists
    serialize at C speed — see the module docstring for why JSON lost
    the hot path."""

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}

    def reset(self) -> None:
        self._ids.clear()

    def _intern(self, name: str, defs: list) -> int:
        key_id = self._ids.get(name)
        if key_id is None:
            key_id = len(self._ids)
            self._ids[name] = key_id
            defs.append((key_id, name))
        return key_id

    def encode_batch(
        self, t: float, writes: Sequence[tuple[str, Any]]
    ) -> bytes:
        defs: list = []
        ids = self._ids
        # Keys and values ship as parallel flat lists: homogeneous
        # lists pickle measurably faster than per-row pairs, and the
        # steady state is two straight-line comprehensions — _intern
        # only runs the round a name is first seen.
        try:
            keys = [ids[variable] for variable, _ in writes]
        except KeyError:
            keys = [self._intern(variable, defs)
                    for variable, _ in writes]
        values = [value for _, value in writes]
        return encode_frame(BATCH, pickle.dumps(
            (t, defs, keys, values), protocol=pickle.HIGHEST_PROTOCOL))

    def encode_event(
        self,
        t: float,
        event_type: str,
        subject: str | None,
        only: Sequence[str] | None,
    ) -> bytes:
        # Events are rare control traffic; their strings go uninterned.
        payload = [t, event_type, subject,
                   sorted(only) if only is not None else None]
        return encode_frame(EVENT, _dump_json(payload))


class WireDecoder:
    """Worker-side twin of :class:`WireEncoder`: registers definitions
    as they arrive and resolves key ids back to names.

    The key table is a plain list — the encoder assigns ids densely
    from zero, so id→name resolution is an index, not a hash probe."""

    def __init__(self) -> None:
        self._names: list[str] = []

    def reset(self) -> None:
        self._names.clear()

    def decode_batch(
        self, payload: bytes
    ) -> tuple[float, list[tuple[str, Any]]]:
        try:
            t, defs, keys, values = decode_pickled(payload)
            names = self._names
            for key_id, name in defs:
                if key_id != len(names):
                    raise WireError(
                        f"key-table definition {key_id} out of order "
                        f"(expected {len(names)}); stream is "
                        "desynchronized"
                    )
                names.append(name)
            if len(keys) != len(values):
                raise WireError(
                    f"malformed BATCH payload: {len(keys)} keys vs "
                    f"{len(values)} values"
                )
            if keys and (min(keys) < 0 or max(keys) >= len(names)):
                raise WireError(
                    "batch references a key-table id this connection "
                    "never defined"
                )
            writes = list(zip(map(names.__getitem__, keys), values))
        except WireError:
            raise
        except (TypeError, ValueError) as exc:
            raise WireError(f"malformed BATCH payload: {exc}") from exc
        return t, writes

    def decode_event(
        self, payload: bytes
    ) -> tuple[float, str, str | None, list[str] | None]:
        try:
            t, event_type, subject, only = _load_json(payload)
        except WireError:
            raise
        except (TypeError, ValueError) as exc:
            raise WireError(f"malformed EVENT payload: {exc}") from exc
        return t, event_type, subject, only
