"""Legacy shim so editable installs work without the ``wheel`` package
(this offline environment lacks it); all metadata lives in pyproject.toml."""

from setuptools import setup

setup()
